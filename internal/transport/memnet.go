package transport

import (
	"container/heap"
	"math/rand"
	"sync"
	"time"

	"repro/internal/proc"
	"repro/internal/telemetry"
)

const defaultQueue = 4096

// Network is an in-memory simulated network. Endpoints attached to the same
// Network can exchange packets subject to the configured latency, jitter and
// loss, and to runtime fault injection (crashes, link cuts, partitions).
//
// The zero latency configuration still delivers asynchronously (packets
// cross a goroutine boundary), so no layer can accidentally rely on
// synchronous delivery.
type Network struct {
	mu         sync.Mutex
	rng        *rand.Rand
	delayMin   time.Duration
	delayMax   time.Duration
	loss       float64
	endpoints  map[proc.ID]*memEndpoint
	crashed    map[proc.ID]bool
	cutLinks   map[link]bool
	cutOneWay  map[dlink]bool            // directed cuts: from→to dropped, reverse unaffected
	linkDelay  map[link][2]time.Duration // per-link latency override
	partition  map[proc.ID]int           // partition group per process; empty = connected
	partOneWay map[dlink]bool            // directed partition edges (PartitionOneWay)
	partActive bool
	closed     bool
	listeners  map[proc.ID]*memStreamListener // service stream listeners
	pipes      []*memPipe                     // open service streams

	// Delayed-delivery scheduler: ONE goroutine owns a timer heap of
	// in-flight packets instead of one time.AfterFunc goroutine per packet.
	// Under load (retransmission storms, many stacks on few cores) the
	// per-packet-goroutine design convoyed tens of thousands of timer
	// callbacks on n.mu and delivery latency exploded; a single scheduler
	// keeps exactly one waiter on the lock and bounded goroutine count.
	schedMu   sync.Mutex
	schedHeap delayHeap
	schedKick chan struct{}
	schedStop chan struct{}
	schedOnce sync.Once
	schedDone sync.WaitGroup

	stats Stats
}

// delayedPkt is one in-flight packet awaiting its delivery time.
type delayedPkt struct {
	at  time.Time
	dst *memEndpoint
	pkt Packet
}

// delayHeap is a min-heap of delayedPkt by delivery time.
type delayHeap []delayedPkt

func (h delayHeap) Len() int           { return len(h) }
func (h delayHeap) Less(i, j int) bool { return h[i].at.Before(h[j].at) }
func (h delayHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *delayHeap) Push(x any)        { *h = append(*h, x.(delayedPkt)) }
func (h *delayHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

type link struct{ a, b proc.ID }

func normLink(a, b proc.ID) link {
	if a > b {
		a, b = b, a
	}
	return link{a: a, b: b}
}

// dlink is a directed link: traffic flowing from → to. One-way faults (ack
// starvation, asymmetric partitions) are sets of dlinks.
type dlink struct{ from, to proc.ID }

// NetOption configures a Network.
type NetOption func(*Network)

// WithDelay sets the per-packet one-way latency range [min, max].
func WithDelay(min, max time.Duration) NetOption {
	return func(n *Network) {
		n.delayMin, n.delayMax = min, max
	}
}

// WithLoss sets the independent per-packet loss probability in [0, 1].
func WithLoss(p float64) NetOption {
	return func(n *Network) { n.loss = p }
}

// WithSeed seeds the network's random source, making loss and jitter
// sequences reproducible.
func WithSeed(seed int64) NetOption {
	return func(n *Network) { n.rng = rand.New(rand.NewSource(seed)) }
}

// NewNetwork creates a simulated network.
func NewNetwork(opts ...NetOption) *Network {
	n := &Network{
		rng:        rand.New(rand.NewSource(1)),
		endpoints:  make(map[proc.ID]*memEndpoint),
		crashed:    make(map[proc.ID]bool),
		cutLinks:   make(map[link]bool),
		cutOneWay:  make(map[dlink]bool),
		linkDelay:  make(map[link][2]time.Duration),
		partition:  make(map[proc.ID]int),
		partOneWay: make(map[dlink]bool),
	}
	for _, o := range opts {
		o(n)
	}
	return n
}

// Endpoint returns (creating if needed) the transport endpoint for id. A
// closed endpoint is replaced by a fresh one, so a process that stopped its
// stack can restart on the same network under the same ID (crash-recovery
// experiments); packets in flight toward the dead endpoint are dropped, not
// delivered to its successor.
func (n *Network) Endpoint(id proc.ID) Transport {
	n.mu.Lock()
	defer n.mu.Unlock()
	if ep, ok := n.endpoints[id]; ok && !ep.isClosed() {
		return ep
	}
	ep := &memEndpoint{
		net:   n,
		self:  id,
		inbox: make(chan Packet, defaultQueue),
	}
	n.endpoints[id] = ep
	return ep
}

// Crash drops all traffic from and to id until Restart. It models a process
// crash at the network level; the process's goroutines are unaffected (a
// crashed process in the crash-stop model simply stops being heard). Every
// service stream attached to id breaks, like TCP connections to a dead host.
func (n *Network) Crash(id proc.ID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.crashed[id] = true
	n.breakStreamsLocked(id, false)
}

// Restart re-enables traffic from and to a previously crashed process.
// Used to model recovery/rejoin experiments.
func (n *Network) Restart(id proc.ID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.crashed, id)
}

// CutLink symmetrically drops all traffic between a and b.
func (n *Network) CutLink(a, b proc.ID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cutLinks[normLink(a, b)] = true
}

// HealLink restores the a-b link.
func (n *Network) HealLink(a, b proc.ID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.cutLinks, normLink(a, b))
}

// CutLinkOneWay drops traffic flowing from → to only; the reverse direction
// keeps working. This is the ack-starvation fault: to still hears from, but
// from never hears back.
func (n *Network) CutLinkOneWay(from, to proc.ID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cutOneWay[dlink{from: from, to: to}] = true
}

// HealLinkOneWay restores the directed from → to link.
func (n *Network) HealLinkOneWay(from, to proc.ID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.cutOneWay, dlink{from: from, to: to})
}

// Partition splits the network into the given groups; traffic crosses group
// boundaries only by being dropped. Processes not listed in any group form
// an implicit extra group.
func (n *Network) Partition(groups ...[]proc.ID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.partition = make(map[proc.ID]int)
	for gi, g := range groups {
		for _, id := range g {
			n.partition[id] = gi + 1
		}
	}
	n.partActive = true
}

// PartitionOneWay blocks traffic from every process in src toward every
// process in dst; the dst → src direction is unaffected. Asymmetric splits
// compose: multiple calls accumulate directed edges, alongside (not
// replacing) any symmetric Partition. Heal removes them all.
func (n *Network) PartitionOneWay(src, dst []proc.ID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, s := range src {
		for _, d := range dst {
			if s == d {
				continue
			}
			n.partOneWay[dlink{from: s, to: d}] = true
		}
	}
}

// Heal removes any partition, symmetric or one-way.
func (n *Network) Heal() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.partition = make(map[proc.ID]int)
	n.partOneWay = make(map[dlink]bool)
	n.partActive = false
}

// SetLinkDelay overrides the latency of the symmetric a-b link, e.g. to
// model one slow member. Zero durations restore the network default.
func (n *Network) SetLinkDelay(a, b proc.ID, min, max time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if min == 0 && max == 0 {
		delete(n.linkDelay, normLink(a, b))
		return
	}
	n.linkDelay[normLink(a, b)] = [2]time.Duration{min, max}
}

// SetLoss changes the loss probability at runtime.
func (n *Network) SetLoss(p float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.loss = p
}

// SetDelay changes the latency range at runtime.
func (n *Network) SetDelay(min, max time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.delayMin, n.delayMax = min, max
}

// Stats returns the traffic counters.
func (n *Network) Stats() StatsSnapshot {
	return n.stats.Snapshot()
}

// RegisterMetrics exports the network's traffic counters under scope.
func (n *Network) RegisterMetrics(s *telemetry.Scope) {
	RegisterStats(s, &n.stats)
}

// ResetStats zeroes the traffic counters (between experiment phases).
func (n *Network) ResetStats() {
	n.stats = Stats{}
}

// Shutdown closes every endpoint.
func (n *Network) Shutdown() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	eps := make([]*memEndpoint, 0, len(n.endpoints))
	for _, ep := range n.endpoints {
		eps = append(eps, ep)
	}
	n.breakStreamsLocked("", true)
	listeners := make([]*memStreamListener, 0, len(n.listeners))
	for _, l := range n.listeners {
		listeners = append(listeners, l)
	}
	n.mu.Unlock()
	for _, ep := range eps {
		ep.Close()
	}
	for _, l := range listeners {
		_ = l.Close()
	}
	// Stop the delayed-delivery scheduler, if it ever started.
	n.schedOnce.Do(func() {}) // from here on the scheduler can no longer start
	if n.schedStop != nil {
		close(n.schedStop)
		n.schedDone.Wait()
	}
}

// route decides the fate of a packet at send time. It returns the delivery
// delay, the destination endpoint, and whether the packet survives.
func (n *Network) route(from, to proc.ID, size int) (*memEndpoint, time.Duration, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.stats.addSent(size)
	if n.closed || n.crashed[from] || n.crashed[to] {
		n.stats.addDropped()
		return nil, 0, false
	}
	if n.cutLinks[normLink(from, to)] || n.cutOneWay[dlink{from: from, to: to}] {
		n.stats.addDropped()
		return nil, 0, false
	}
	if n.partActive && n.partition[from] != n.partition[to] {
		n.stats.addDropped()
		return nil, 0, false
	}
	if len(n.partOneWay) > 0 && n.partOneWay[dlink{from: from, to: to}] {
		n.stats.addDropped()
		return nil, 0, false
	}
	if n.loss > 0 && n.rng.Float64() < n.loss {
		n.stats.addDropped()
		return nil, 0, false
	}
	ep, ok := n.endpoints[to]
	if !ok {
		n.stats.addDropped()
		return nil, 0, false
	}
	delayMin, delayMax := n.delayMin, n.delayMax
	if override, ok := n.linkDelay[normLink(from, to)]; ok {
		delayMin, delayMax = override[0], override[1]
	}
	delay := delayMin
	if delayMax > delayMin {
		delay += time.Duration(n.rng.Int63n(int64(delayMax - delayMin)))
	}
	return ep, delay, true
}

// isCrashed reports whether id is currently crashed (checked again at
// delivery time so that packets in flight at crash time are lost too).
func (n *Network) isCrashed(id proc.ID) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.crashed[id]
}

type memEndpoint struct {
	net   *Network
	self  proc.ID
	inbox chan Packet

	mu     sync.Mutex
	closed bool
}

var _ Transport = (*memEndpoint)(nil)

func (e *memEndpoint) Self() proc.ID { return e.self }

func (e *memEndpoint) Send(to proc.ID, data []byte) {
	e.sendPrefixed(to, nil, data)
}

// sendPrefixed is Send with an optional payload prefix (the group mux's
// tag), folded into the single copy Send makes anyway (prefixSender fast
// path).
func (e *memEndpoint) sendPrefixed(to proc.ID, prefix, data []byte) {
	dst, delay, ok := e.net.route(e.self, to, len(prefix)+len(data))
	if !ok {
		return
	}
	// Copy the payload so the caller may reuse its buffer, as with a real
	// network write. The copy lives in a pooled frame buffer; the final
	// consumer recycles it (see framebuf.go).
	buf := GetFrame(len(prefix) + len(data))
	copy(buf, prefix)
	copy(buf[len(prefix):], data)
	pkt := Packet{From: e.self, Data: buf}
	if delay <= 0 {
		dst.enqueue(pkt)
		return
	}
	e.net.schedule(delayedPkt{at: time.Now().Add(delay), dst: dst, pkt: pkt})
}

// maxScheduled bounds the delivery scheduler's queue. An unbounded queue
// is bufferbloat: under overload (retransmission storms on a slow machine)
// the backlog — and with it every packet's latency — grows without limit,
// timeouts fire, senders retransmit harder, and the network livelocks at
// utilization 1. A real network's buffers are finite; past the bound we
// drop (unreliable contract), which backs the load off through the
// retransmission layers above.
const maxScheduled = 8192

// schedule hands a delayed packet to the network's delivery scheduler.
func (n *Network) schedule(d delayedPkt) {
	n.schedOnce.Do(func() {
		n.schedKick = make(chan struct{}, 1)
		n.schedStop = make(chan struct{})
		n.schedDone.Add(1)
		go n.deliverLoop()
	})
	n.schedMu.Lock()
	if len(n.schedHeap) >= maxScheduled {
		n.schedMu.Unlock()
		n.stats.addDropped()
		PutFrame(d.pkt.Data)
		return
	}
	heap.Push(&n.schedHeap, d)
	next := n.schedHeap[0].at
	n.schedMu.Unlock()
	if next.Equal(d.at) {
		// The new packet is (or ties) the earliest: wake the scheduler so it
		// re-arms its timer.
		select {
		case n.schedKick <- struct{}{}:
		default:
		}
	}
}

// deliverLoop is the single goroutine delivering delayed packets in
// delivery-time order (crash state is re-checked at delivery time, so
// packets in flight at crash time are lost, as before).
func (n *Network) deliverLoop() {
	defer n.schedDone.Done()
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		now := time.Now()
		var due []delayedPkt
		n.schedMu.Lock()
		for len(n.schedHeap) > 0 && !n.schedHeap[0].at.After(now) {
			due = append(due, heap.Pop(&n.schedHeap).(delayedPkt))
		}
		var wait time.Duration = time.Hour
		if len(n.schedHeap) > 0 {
			wait = time.Until(n.schedHeap[0].at)
		}
		n.schedMu.Unlock()

		if len(due) > 0 {
			// One crash-state read per batch: the scheduler must not queue
			// on n.mu once per packet while senders hammer the same lock.
			n.mu.Lock()
			crashed := make(map[proc.ID]bool, len(n.crashed))
			for id := range n.crashed {
				crashed[id] = true
			}
			n.mu.Unlock()
			for _, d := range due {
				if crashed[d.dst.self] {
					n.stats.addDropped()
					PutFrame(d.pkt.Data)
					continue
				}
				d.dst.enqueue(d.pkt)
			}
		}

		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(wait)
		select {
		case <-n.schedStop:
			// Drain: recycle whatever never got delivered.
			n.schedMu.Lock()
			for _, d := range n.schedHeap {
				PutFrame(d.pkt.Data)
			}
			n.schedHeap = nil
			n.schedMu.Unlock()
			return
		case <-n.schedKick:
		case <-timer.C:
		}
	}
}

func (e *memEndpoint) enqueue(pkt Packet) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		e.net.stats.addDropped()
		PutFrame(pkt.Data)
		return
	}
	select {
	case e.inbox <- pkt:
		e.net.stats.addDelivered()
	default:
		// Queue overflow: the unreliable transport drops the packet —
		// recycling its buffer, which drops would otherwise leak to the GC
		// exactly under the overload scenarios the pool exists for.
		e.net.stats.addDropped()
		PutFrame(pkt.Data)
	}
}

func (e *memEndpoint) Receive() <-chan Packet { return e.inbox }

func (e *memEndpoint) isClosed() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.closed
}

func (e *memEndpoint) Close() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return
	}
	e.closed = true
	close(e.inbox)
}
