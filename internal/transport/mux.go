package transport

// Group multiplexer: several independent protocol stacks ("groups") share
// one physical transport endpoint.
//
// Sharding the service's key space runs S complete replicated stacks on the
// same node set. Naively that costs S separate transports — over TCP, S×N
// connections and S listen ports per node. The mux keeps the physical layer
// at one endpoint per node: every outbound frame is prefixed with a uvarint
// group ID, and a single demux loop routes inbound frames to per-group
// inboxes. Each group sees a plain Transport and the layers above (reliable
// channel, consensus, broadcast, replication) run unchanged and unaware.
//
// The mux preserves the unreliable contract per group: a full group inbox
// drops the frame (retransmission above repairs it), and a frame tagged for
// an unknown group is dropped (a peer running more shards than we do).
//
// Lifecycle: each group's Close (called by its own stack's shutdown) closes
// only that group's inbox; Close on the mux closes the physical transport,
// which ends the demux loop and closes the remaining groups.

import (
	"encoding/binary"
	"sync"

	"repro/internal/proc"
)

// GroupMux fans one physical Transport out to n logical group transports.
type GroupMux struct {
	tr     Transport
	groups []*muxGroup
	wg     sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

// NewGroupMux wraps tr into n logical transports (group IDs 0..n-1). The
// mux takes ownership of tr: Close closes it. Peers must agree on group
// numbering — group i here talks to group i everywhere.
func NewGroupMux(tr Transport, n int) *GroupMux {
	m := &GroupMux{tr: tr}
	for i := 0; i < n; i++ {
		m.groups = append(m.groups, &muxGroup{
			mux:   m,
			id:    uint64(i),
			inbox: make(chan Packet, defaultQueue),
		})
	}
	m.wg.Add(1)
	go m.demuxLoop()
	return m
}

// Groups returns the number of logical groups.
func (m *GroupMux) Groups() int { return len(m.groups) }

// Group returns the logical transport of group i.
func (m *GroupMux) Group(i int) Transport { return m.groups[i] }

// Close shuts the physical transport down; the demux loop drains out and
// every group's inbox closes. Idempotent.
func (m *GroupMux) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	m.mu.Unlock()
	m.tr.Close()
	m.wg.Wait()
}

// demuxLoop routes inbound frames to their group's inbox by tag.
func (m *GroupMux) demuxLoop() {
	defer m.wg.Done()
	for pkt := range m.tr.Receive() {
		gid, n := binary.Uvarint(pkt.Data)
		if n <= 0 || gid >= uint64(len(m.groups)) {
			// Corrupt or unknown tag: drop (unreliable contract).
			PutFrame(pkt.Data)
			continue
		}
		// The payload subslice shares the frame buffer; the group's consumer
		// recycles it (minus the tag prefix) when done.
		m.groups[gid].enqueue(Packet{From: pkt.From, Data: pkt.Data[n:]})
	}
	for _, g := range m.groups {
		g.Close()
	}
}

// muxGroup is one logical group's view of the shared endpoint.
type muxGroup struct {
	mux   *GroupMux
	id    uint64
	inbox chan Packet

	mu     sync.Mutex
	closed bool
}

var _ Transport = (*muxGroup)(nil)

func (g *muxGroup) Self() proc.ID { return g.mux.tr.Self() }

// prefixSender is the optional transport fast path for tagged sends: the
// transport folds prefix+data into the single copy it makes anyway,
// sparing the mux an intermediate buffer per frame. Both in-tree
// transports implement it; the generic path below covers any other.
type prefixSender interface {
	sendPrefixed(to proc.ID, prefix, data []byte)
}

// Send prefixes data with the group tag and forwards it on the shared
// endpoint.
func (g *muxGroup) Send(to proc.ID, data []byte) {
	var tag [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tag[:], g.id)
	if ps, ok := g.mux.tr.(prefixSender); ok {
		ps.sendPrefixed(to, tag[:n], data)
		return
	}
	// Generic transport: build the tagged frame ourselves (transports copy
	// on Send, so the pooled copy is recycled immediately).
	frame := GetFrame(n + len(data))
	copy(frame, tag[:n])
	copy(frame[n:], data)
	g.mux.tr.Send(to, frame)
	PutFrame(frame)
}

func (g *muxGroup) Receive() <-chan Packet { return g.inbox }

// Close closes this group's inbox only; the shared endpoint stays up for
// the other groups. Called by the group's own stack on shutdown.
func (g *muxGroup) Close() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return
	}
	g.closed = true
	close(g.inbox)
}

// enqueue delivers one inbound packet, dropping on overflow or after Close
// exactly like the physical transports do.
func (g *muxGroup) enqueue(pkt Packet) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		PutFrame(pkt.Data)
		return
	}
	select {
	case g.inbox <- pkt:
	default:
		PutFrame(pkt.Data)
	}
}
