package transport

import (
	"sync/atomic"

	"repro/internal/telemetry"
)

// Registry hookups for the transport layer. Wire-path counters are held in
// a tcpMetrics struct resolved once per event through an atomic pointer
// (nil until RegisterMetrics), so the uninstrumented cost is one load and
// one branch; queue depth and connection count are gauge-funcs computed at
// scrape time from the connection table, never touched on the send path.

// tcpMetrics is the TCP transport's instrument set.
type tcpMetrics struct {
	framesOut  *telemetry.Counter
	bytesOut   *telemetry.Counter
	framesIn   *telemetry.Counter
	bytesIn    *telemetry.Counter
	queueDrops *telemetry.Counter // outbound write-queue overflow / dead conn
	inboxDrops *telemetry.Counter // inbound inbox overflow
}

func (m *tcpMetrics) frameOut(n int) {
	if m == nil {
		return
	}
	m.framesOut.Inc()
	m.bytesOut.Add(uint64(n))
}

func (m *tcpMetrics) frameIn(n int) {
	if m == nil {
		return
	}
	m.framesIn.Inc()
	m.bytesIn.Add(uint64(n))
}

func (m *tcpMetrics) queueDrop() {
	if m == nil {
		return
	}
	m.queueDrops.Inc()
}

func (m *tcpMetrics) inboxDrop() {
	if m == nil {
		return
	}
	m.inboxDrops.Inc()
}

// RegisterMetrics binds the transport's counters and gauges into scope.
// Safe to call at any point (instruments attach atomically); call once.
func (t *TCPTransport) RegisterMetrics(s *telemetry.Scope) {
	if s == nil {
		return
	}
	m := &tcpMetrics{
		framesOut:  s.Counter("gcs_transport_frames_out_total", "Frames queued to peer connections."),
		bytesOut:   s.Counter("gcs_transport_bytes_out_total", "Frame bytes (incl. length prefix) queued to peer connections."),
		framesIn:   s.Counter("gcs_transport_frames_in_total", "Frames received from peer connections."),
		bytesIn:    s.Counter("gcs_transport_bytes_in_total", "Frame payload bytes received from peer connections."),
		queueDrops: s.Counter("gcs_transport_queue_drops_total", "Outbound frames dropped (write-queue overflow or dead connection)."),
		inboxDrops: s.Counter("gcs_transport_inbox_drops_total", "Inbound frames dropped (inbox overflow)."),
	}
	t.metrics.Store(m)
	s.GaugeFunc("gcs_transport_write_queue_depth",
		"Frames parked at connection write loops, summed over connections.",
		func() float64 {
			t.mu.Lock()
			defer t.mu.Unlock()
			depth := 0
			for _, tc := range t.conns {
				depth += len(tc.out)
			}
			return float64(depth)
		})
	s.GaugeFunc("gcs_transport_connections",
		"Established outbound peer connections.",
		func() float64 {
			t.mu.Lock()
			defer t.mu.Unlock()
			return float64(len(t.conns))
		})
	RegisterFramePool(s)
}

// Frame pool accounting: always-on atomics (one add per Get/Put is noise
// next to the copy the frame exists for), exported on demand.
var (
	poolHits   atomic.Uint64 // GetFrame served from pooled capacity
	poolMisses atomic.Uint64 // GetFrame fell back to make([]byte)
)

// PoolStats returns the frame pool hit/miss counters.
func PoolStats() (hits, misses uint64) {
	return poolHits.Load(), poolMisses.Load()
}

// RegisterFramePool exports the process-wide frame pool hit rate. The pool
// is global, so callers should register it under a node-scoped (not
// per-shard) scope exactly once.
func RegisterFramePool(s *telemetry.Scope) {
	if s == nil {
		return
	}
	s.CounterFunc("gcs_transport_frame_pool_hits_total",
		"Frame buffers served from pooled capacity.",
		func() float64 { return float64(poolHits.Load()) })
	s.CounterFunc("gcs_transport_frame_pool_misses_total",
		"Frame buffers allocated fresh (pool capacity too small).",
		func() float64 { return float64(poolMisses.Load()) })
}

// RegisterStats exports a Stats block (the simulated network's traffic
// counters) under scope.
func RegisterStats(s *telemetry.Scope, st *Stats) {
	if s == nil || st == nil {
		return
	}
	s.CounterFunc("gcs_transport_packets_sent_total",
		"Packets submitted to Send.",
		func() float64 { return float64(st.sent.Load()) })
	s.CounterFunc("gcs_transport_packets_delivered_total",
		"Packets handed to a receiver.",
		func() float64 { return float64(st.delivered.Load()) })
	s.CounterFunc("gcs_transport_packets_dropped_total",
		"Packets lost (loss, partition, crash, overflow).",
		func() float64 { return float64(st.dropped.Load()) })
	s.CounterFunc("gcs_transport_payload_bytes_total",
		"Payload bytes submitted to Send.",
		func() float64 { return float64(st.bytes.Load()) })
}
