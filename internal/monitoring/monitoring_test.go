package monitoring

import (
	"sync"
	"testing"
	"time"

	"repro/internal/fd"
	"repro/internal/membership"
	"repro/internal/proc"
	"repro/internal/rchannel"
	"repro/internal/transport"
)

// orderedBus fakes the generic broadcast used by the membership services:
// operations are applied to every registered service in broadcast order.
type orderedBus struct {
	mu   sync.Mutex
	subs []*membership.Service
}

func (b *orderedBus) Broadcast(_ string, body any) error {
	op := body.(membership.Op)
	b.mu.Lock()
	subs := append([]*membership.Service(nil), b.subs...)
	b.mu.Unlock()
	for _, s := range subs {
		s.Apply(op)
	}
	return nil
}

type rig struct {
	net  *transport.Network
	bus  *orderedBus
	mons map[proc.ID]*Monitor
	memb map[proc.ID]*membership.Service
}

func newRig(t *testing.T, ids []proc.ID, policy Policy, fdTimeout time.Duration) *rig {
	t.Helper()
	network := transport.NewNetwork(transport.WithDelay(0, time.Millisecond), transport.WithSeed(17))
	r := &rig{
		net:  network,
		bus:  &orderedBus{},
		mons: make(map[proc.ID]*Monitor),
		memb: make(map[proc.ID]*membership.Service),
	}
	initial := proc.NewView(ids...)
	var cleanup []func()
	for _, id := range ids {
		ep := rchannel.New(network.Endpoint(id), rchannel.WithRTO(5*time.Millisecond))
		det := fd.New(ep, ids, fd.WithInterval(2*time.Millisecond), fd.WithCheckEvery(1*time.Millisecond))
		sub := det.Subscribe(fdTimeout)
		ms := membership.New(r.bus, ep, initial, membership.Snapshotter{})
		r.bus.subs = append(r.bus.subs, ms)
		mon := New(ep, sub, ms, policy)
		ep.Start()
		det.Start()
		mon.Start()
		r.mons[id] = mon
		r.memb[id] = ms
		cleanup = append(cleanup, func() { mon.Stop(); det.Stop(); ep.Stop() })
	}
	t.Cleanup(func() {
		for _, fn := range cleanup {
			fn()
		}
		network.Shutdown()
	})
	return r
}

func waitExcluded(t *testing.T, ms *membership.Service, p proc.ID, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for ms.View().Contains(p) {
		if time.Now().After(deadline) {
			t.Fatalf("%s never excluded: %v", p, ms.View())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestLocalPolicyExcludesCrashed(t *testing.T) {
	ids := proc.IDs("a", "b", "c")
	r := newRig(t, ids, Policy{Threshold: 1, PollEvery: 2 * time.Millisecond}, 30*time.Millisecond)
	r.net.Crash("c")
	waitExcluded(t, r.memb["a"], "c", 10*time.Second)
	if !r.mons["a"].Excluded("c") && !r.mons["b"].Excluded("c") {
		t.Fatal("no monitor recorded the exclusion")
	}
}

func TestHealthyPeersNeverExcluded(t *testing.T) {
	ids := proc.IDs("a", "b", "c")
	r := newRig(t, ids, Policy{Threshold: 1, PollEvery: 2 * time.Millisecond}, 60*time.Millisecond)
	time.Sleep(200 * time.Millisecond)
	for _, id := range ids {
		if got := r.memb[id].View(); got.Seq != 0 {
			t.Fatalf("spurious view change at %s: %v", id, got)
		}
	}
}

// TestThresholdPolicy requires corroboration: with Threshold 2, one
// process's local suspicion alone must not exclude; a real crash (suspected
// by everyone) must.
func TestThresholdPolicy(t *testing.T) {
	ids := proc.IDs("a", "b", "c")
	// A generous timeout so that scheduler hiccups on a loaded test machine
	// cannot produce a second, unintended suspicion at b.
	r := newRig(t, ids, Policy{Threshold: 2, PollEvery: 2 * time.Millisecond}, 150*time.Millisecond)

	// Only a's inbound link from c is cut: only a suspects c.
	r.net.CutLink("a", "c")
	time.Sleep(400 * time.Millisecond)
	if !r.memb["b"].View().Contains("c") {
		t.Fatal("single suspicion excluded c despite threshold 2")
	}
	r.net.HealLink("a", "c")
	time.Sleep(200 * time.Millisecond)

	// Now crash c for real: a and b both suspect, threshold reached.
	r.net.Crash("c")
	waitExcluded(t, r.memb["a"], "c", 10*time.Second)
}

// TestOutputTriggeredExclusion drives exclusion from the reliable channel's
// stuck-buffer notification rather than from heartbeat timeouts
// (Section 3.3.2, [12]).
func TestOutputTriggeredExclusion(t *testing.T) {
	network := transport.NewNetwork(transport.WithDelay(0, time.Millisecond), transport.WithSeed(19))
	ids := proc.IDs("a", "b")
	initial := proc.NewView(ids...)
	bus := &orderedBus{}

	ep := rchannel.New(network.Endpoint("a"),
		rchannel.WithRTO(5*time.Millisecond),
		rchannel.WithStuckAfter(30*time.Millisecond))
	det := fd.New(ep, ids, fd.WithInterval(2*time.Millisecond))
	sub := det.Subscribe(time.Hour) // heartbeat path disabled in practice
	ms := membership.New(bus, ep, initial, membership.Snapshotter{})
	bus.subs = append(bus.subs, ms)
	mon := New(ep, sub, ms, Policy{Threshold: 1, UseOutputTrigger: true, PollEvery: 2 * time.Millisecond})
	ep.Start()
	det.Start()
	mon.Start()
	t.Cleanup(func() {
		mon.Stop()
		det.Stop()
		ep.Stop()
		network.Shutdown()
	})

	network.Crash("b")
	// A buffered message to b can never be acknowledged...
	if err := ep.Send("b", "app", membership.Op{Kind: 1, P: "x"}); err != nil {
		t.Fatal(err)
	}
	// ...so the output trigger must eventually fire and exclude b, allowing
	// the buffer to be discarded.
	waitExcluded(t, ms, "b", 10*time.Second)
	deadline := time.Now().Add(5 * time.Second)
	for ep.PendingTo("b") != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("buffer to excluded peer not discarded: %d", ep.PendingTo("b"))
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestSelfIsNeverExcluded(t *testing.T) {
	ids := proc.IDs("a", "b")
	r := newRig(t, ids, Policy{Threshold: 1, PollEvery: 2 * time.Millisecond}, 30*time.Millisecond)
	// Even if everything else is silent, a must not exclude itself.
	// Stop b's monitor first: a crashed process stops acting (the fake bus
	// would otherwise let the "dead" b keep voting).
	r.mons["b"].Stop()
	r.net.Crash("b")
	waitExcluded(t, r.memb["a"], "b", 10*time.Second)
	if !r.memb["a"].View().Contains("a") {
		t.Fatal("process excluded itself")
	}
}
