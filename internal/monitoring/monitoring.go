// Package monitoring implements the monitoring component (Section 3.3.2).
//
// In the new architecture the decision to *exclude* a suspected process is
// not made by the membership service (nor by the failure detector): it is an
// explicit policy owned by this component. The separation allows:
//
//   - the consensus component to use a small failure detection timeout
//     (seconds in the paper; milliseconds here) whose false suspicions cost
//     almost nothing, while
//   - the monitoring component uses a large timeout (minutes in the paper)
//     before the expensive exclusion + state-transfer path is taken, and
//   - exclusions can additionally require corroboration by a threshold of
//     other processes, and/or be triggered by the reliable channel's
//     output-triggered suspicions [12] (a buffered message unacknowledged
//     for too long can only be discarded by excluding its destination).
//
// This decoupling is what Section 4.3 credits for the higher responsiveness
// of the new architecture.
package monitoring

import (
	"sync"
	"time"

	"repro/internal/fd"
	"repro/internal/membership"
	"repro/internal/msg"
	"repro/internal/proc"
	"repro/internal/rchannel"
)

// VoteProto is the rchannel protocol for suspicion corroboration votes.
const VoteProto = "mon.vote"

type voteMsg struct {
	Target proc.ID
}

func init() {
	msg.Register(voteMsg{})
}

// Policy configures when the monitor converts suspicions into exclusions.
type Policy struct {
	// Threshold is the number of distinct processes (including this one)
	// that must suspect a peer before it is excluded. 1 means exclude on
	// local suspicion alone.
	Threshold int
	// UseOutputTrigger also counts the reliable channel's output-triggered
	// suspicion as a local vote.
	UseOutputTrigger bool
	// PollEvery bounds reaction latency to state changes.
	PollEvery time.Duration
}

// DefaultPolicy requires a simple local long-timeout suspicion.
func DefaultPolicy() Policy {
	return Policy{Threshold: 1, UseOutputTrigger: false, PollEvery: 5 * time.Millisecond}
}

// Monitor observes the long-timeout failure detector subscription and the
// reliable channel, and excludes peers via the membership service.
type Monitor struct {
	ep     *rchannel.Endpoint
	sub    *fd.Subscription
	memb   *membership.Service
	policy Policy
	self   proc.ID

	mu       sync.Mutex
	votes    map[proc.ID]map[proc.ID]struct{} // target -> voters
	voted    map[proc.ID]bool                 // targets this process voted for
	excluded map[proc.ID]bool
	started  bool

	stop chan struct{}
	done sync.WaitGroup
}

// New creates a monitor. sub must be a failure detector subscription with
// the *long* (exclusion) timeout.
func New(ep *rchannel.Endpoint, sub *fd.Subscription, memb *membership.Service, policy Policy) *Monitor {
	if policy.Threshold < 1 {
		policy.Threshold = 1
	}
	if policy.PollEvery <= 0 {
		policy.PollEvery = 5 * time.Millisecond
	}
	m := &Monitor{
		ep:       ep,
		sub:      sub,
		memb:     memb,
		policy:   policy,
		self:     ep.Self(),
		votes:    make(map[proc.ID]map[proc.ID]struct{}),
		voted:    make(map[proc.ID]bool),
		excluded: make(map[proc.ID]bool),
		stop:     make(chan struct{}),
	}
	ep.Handle(VoteProto, m.onVote)
	if policy.UseOutputTrigger {
		ep.OnStuck(func(peer proc.ID, _ time.Duration) {
			m.castVote(peer)
		})
	}
	return m
}

// Start begins monitoring (start_monitor in Figure 9).
func (m *Monitor) Start() {
	m.mu.Lock()
	if m.started {
		m.mu.Unlock()
		return
	}
	m.started = true
	m.mu.Unlock()
	m.done.Add(1)
	go m.loop()
}

// Stop halts monitoring (stop_monitor in Figure 9).
func (m *Monitor) Stop() {
	m.mu.Lock()
	if !m.started {
		m.mu.Unlock()
		return
	}
	select {
	case <-m.stop:
		m.mu.Unlock()
		m.done.Wait()
		return
	default:
	}
	close(m.stop)
	m.mu.Unlock()
	m.done.Wait()
}

func (m *Monitor) loop() {
	defer m.done.Done()
	ticker := time.NewTicker(m.policy.PollEvery)
	defer ticker.Stop()
	for {
		select {
		case <-m.stop:
			return
		case ev := <-m.sub.Events():
			if ev.Suspected {
				m.castVote(ev.Peer)
			}
		case <-ticker.C:
			// Sticky state poll: events may have been dropped.
			for _, p := range m.sub.Suspects() {
				m.castVote(p)
			}
		}
	}
}

// castVote records a local suspicion of target, gossips it, and excludes the
// target if the threshold is met.
func (m *Monitor) castVote(target proc.ID) {
	if target == m.self {
		return
	}
	view := m.memb.View()
	if !view.Contains(target) {
		return
	}
	m.mu.Lock()
	if m.excluded[target] || m.voted[target] {
		m.mu.Unlock()
		return
	}
	m.voted[target] = true
	m.addVoteLocked(target, m.self)
	reached := len(m.votes[target]) >= m.policy.Threshold
	m.mu.Unlock()

	// Corroborate with the other members' monitoring components
	// ("the monitoring component of p may interact with the monitoring
	// component of other processes", Section 3.3.2).
	if m.policy.Threshold > 1 {
		for _, peer := range view.Members {
			if peer != m.self && peer != target {
				_ = m.ep.Send(peer, VoteProto, voteMsg{Target: target})
			}
		}
	}
	if reached {
		m.exclude(target)
	}
}

func (m *Monitor) onVote(from proc.ID, body any) {
	v, ok := body.(voteMsg)
	if !ok {
		return
	}
	m.mu.Lock()
	if m.excluded[v.Target] {
		m.mu.Unlock()
		return
	}
	m.addVoteLocked(v.Target, from)
	reached := len(m.votes[v.Target]) >= m.policy.Threshold
	m.mu.Unlock()
	if reached {
		m.exclude(v.Target)
	}
}

func (m *Monitor) addVoteLocked(target, voter proc.ID) {
	set, ok := m.votes[target]
	if !ok {
		set = make(map[proc.ID]struct{})
		m.votes[target] = set
	}
	set[voter] = struct{}{}
}

func (m *Monitor) exclude(target proc.ID) {
	m.mu.Lock()
	if m.excluded[target] {
		m.mu.Unlock()
		return
	}
	m.excluded[target] = true
	m.mu.Unlock()
	_ = m.memb.Remove(target)
	// Once excluded, buffered messages for the target may be discarded
	// (output-triggered suspicion rationale, Section 3.3.2).
	m.ep.DiscardPeer(target)
}

// Excluded reports whether the monitor has excluded p (test helper).
func (m *Monitor) Excluded(p proc.ID) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.excluded[p]
}
