package fd

import (
	"testing"
	"time"

	"repro/internal/proc"
	"repro/internal/rchannel"
	"repro/internal/transport"
)

func newFDRig(t *testing.T) (*transport.Network, map[proc.ID]*Detector) {
	t.Helper()
	network := transport.NewNetwork(transport.WithDelay(0, time.Millisecond), transport.WithSeed(4))
	ids := proc.IDs("a", "b", "c")
	dets := make(map[proc.ID]*Detector)
	var eps []*rchannel.Endpoint
	for _, id := range ids {
		ep := rchannel.New(network.Endpoint(id))
		dets[id] = New(ep, ids, WithInterval(2*time.Millisecond), WithCheckEvery(1*time.Millisecond))
		ep.Start()
		dets[id].Start()
		eps = append(eps, ep)
	}
	t.Cleanup(func() {
		for _, d := range dets {
			d.Stop()
		}
		for _, ep := range eps {
			ep.Stop()
		}
		network.Shutdown()
	})
	return network, dets
}

func TestNoFalseSuspicionWhenHealthy(t *testing.T) {
	_, dets := newFDRig(t)
	sub := dets["a"].Subscribe(50 * time.Millisecond)
	defer sub.Close()
	time.Sleep(150 * time.Millisecond)
	if got := sub.Suspects(); len(got) != 0 {
		t.Fatalf("healthy peers suspected: %v", got)
	}
}

func TestCrashEventuallySuspected(t *testing.T) {
	network, dets := newFDRig(t)
	sub := dets["a"].Subscribe(30 * time.Millisecond)
	defer sub.Close()
	network.Crash("b")
	deadline := time.Now().Add(5 * time.Second)
	for !sub.Suspected("b") {
		if time.Now().After(deadline) {
			t.Fatal("crashed peer never suspected (completeness violated)")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if sub.Suspected("c") {
		t.Fatal("healthy peer suspected alongside the crash")
	}
}

func TestSuspicionRevokedOnRecovery(t *testing.T) {
	network, dets := newFDRig(t)
	sub := dets["a"].Subscribe(25 * time.Millisecond)
	defer sub.Close()
	network.CutLink("a", "b")
	deadline := time.Now().Add(5 * time.Second)
	for !sub.Suspected("b") {
		if time.Now().After(deadline) {
			t.Fatal("silent peer never suspected")
		}
		time.Sleep(2 * time.Millisecond)
	}
	network.HealLink("a", "b")
	deadline = time.Now().Add(5 * time.Second)
	for sub.Suspected("b") {
		if time.Now().After(deadline) {
			t.Fatal("suspicion never revoked (<>S accuracy)")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestPerSubscriberTimeouts is the decoupling property of Section 3.3.2:
// the same detector serves an aggressive consensus subscription and a
// conservative monitoring subscription; a short outage trips only the
// former.
func TestPerSubscriberTimeouts(t *testing.T) {
	network, dets := newFDRig(t)
	short := dets["a"].Subscribe(20 * time.Millisecond)
	long := dets["a"].Subscribe(10 * time.Second)
	defer short.Close()
	defer long.Close()

	network.CutLink("a", "b")
	deadline := time.Now().Add(5 * time.Second)
	for !short.Suspected("b") {
		if time.Now().After(deadline) {
			t.Fatal("short subscription never fired")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if long.Suspected("b") {
		t.Fatal("long subscription fired on a short outage")
	}
	network.HealLink("a", "b")
}

func TestEventsStream(t *testing.T) {
	network, dets := newFDRig(t)
	sub := dets["a"].Subscribe(25 * time.Millisecond)
	defer sub.Close()
	network.Crash("c")
	deadline := time.After(5 * time.Second)
	for {
		select {
		case ev := <-sub.Events():
			if ev.Peer == "c" && ev.Suspected {
				return
			}
		case <-deadline:
			t.Fatal("no suspect event for crashed peer")
		}
	}
}
