// Package fd implements the failure detection component (Figure 9).
//
// The detector is heartbeat based and deliberately *unreliable* in the sense
// of Chandra–Toueg [10]: it may wrongly suspect correct processes (a slow
// network or an aggressive timeout produces false suspicions) and it revokes
// suspicions when heartbeats resume. Under the usual partial-synchrony
// assumption it is eventually accurate for crashed processes, i.e. it
// behaves like a detector of class <>S, which is all the consensus layer
// needs.
//
// The key architectural property from the paper (Section 3.3.2) is that
// failure detection is decoupled from membership: several components may
// Subscribe with *different timeouts*. The consensus component subscribes
// with a small timeout (fast rounds after a crash, cheap false suspicions),
// while the monitoring component subscribes with a large timeout (process
// exclusion is expensive, so it must be conservative). The detector serves
// both from the same heartbeat stream.
package fd

import (
	"sync"
	"time"

	"repro/internal/msg"
	"repro/internal/proc"
	"repro/internal/rchannel"
)

// Proto is the datagram protocol name used for heartbeats.
const Proto = "fd.hb"

type heartbeat struct {
	From proc.ID
}

func init() {
	msg.Register(heartbeat{})
}

// Event reports a change in the suspicion state of a peer.
type Event struct {
	Peer      proc.ID
	Suspected bool // true: suspect; false: suspicion revoked (trust)
}

// Option configures a Detector.
type Option func(*Detector)

// WithInterval sets the heartbeat emission period.
func WithInterval(d time.Duration) Option {
	return func(f *Detector) { f.interval = d }
}

// WithCheckEvery sets the suspicion evaluation period. It bounds the
// detection granularity; it should be well below the smallest subscriber
// timeout.
func WithCheckEvery(d time.Duration) Option {
	return func(f *Detector) { f.checkEvery = d }
}

// Detector emits heartbeats to its peers and tracks the heartbeats it
// receives, evaluating per-subscription timeouts.
type Detector struct {
	ep         *rchannel.Endpoint
	self       proc.ID
	interval   time.Duration
	checkEvery time.Duration

	mu      sync.Mutex
	peers   []proc.ID
	lastHB  map[proc.ID]time.Time
	subs    map[*Subscription]struct{}
	started bool

	stop chan struct{}
	done sync.WaitGroup
}

// New creates a detector monitoring the given peers (self is ignored if
// present). Heartbeats travel as unreliable datagrams: retransmitting a
// heartbeat would defeat its purpose.
func New(ep *rchannel.Endpoint, peers []proc.ID, opts ...Option) *Detector {
	f := &Detector{
		ep:         ep,
		self:       ep.Self(),
		interval:   5 * time.Millisecond,
		checkEvery: 2 * time.Millisecond,
		lastHB:     make(map[proc.ID]time.Time),
		subs:       make(map[*Subscription]struct{}),
		stop:       make(chan struct{}),
	}
	for _, o := range opts {
		o(f)
	}
	now := time.Now()
	for _, p := range peers {
		if p == f.self {
			continue
		}
		f.peers = append(f.peers, p)
		// A peer is healthy until proven otherwise: pretend we just heard it.
		f.lastHB[p] = now
	}
	ep.Handle(Proto, f.onHeartbeat)
	return f
}

// Start launches the heartbeat and evaluation goroutines.
func (f *Detector) Start() {
	f.mu.Lock()
	if f.started {
		f.mu.Unlock()
		return
	}
	f.started = true
	f.mu.Unlock()
	f.done.Add(2)
	go f.heartbeatLoop()
	go f.checkLoop()
}

// Stop terminates the detector.
func (f *Detector) Stop() {
	f.mu.Lock()
	if !f.started {
		f.mu.Unlock()
		return
	}
	select {
	case <-f.stop:
		f.mu.Unlock()
		f.done.Wait()
		return
	default:
	}
	close(f.stop)
	f.mu.Unlock()
	f.done.Wait()
}

// Subscribe creates a suspicion subscription with its own timeout. Events
// are delivered on the subscription channel with best-effort semantics (the
// current suspicion state is always available via Suspected, so a dropped
// event cannot be missed by a poller).
func (f *Detector) Subscribe(timeout time.Duration) *Subscription {
	s := &Subscription{
		fd:        f,
		timeout:   timeout,
		suspected: make(map[proc.ID]bool),
		events:    make(chan Event, 64),
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.subs[s] = struct{}{}
	return s
}

func (f *Detector) onHeartbeat(from proc.ID, body any) {
	if _, ok := body.(heartbeat); !ok {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, known := f.lastHB[from]; known {
		f.lastHB[from] = time.Now()
	}
}

func (f *Detector) heartbeatLoop() {
	defer f.done.Done()
	ticker := time.NewTicker(f.interval)
	defer ticker.Stop()
	for {
		select {
		case <-f.stop:
			return
		case <-ticker.C:
			f.mu.Lock()
			peers := make([]proc.ID, len(f.peers))
			copy(peers, f.peers)
			f.mu.Unlock()
			for _, p := range peers {
				_ = f.ep.SendDatagram(p, Proto, heartbeat{From: f.self})
			}
		}
	}
}

func (f *Detector) checkLoop() {
	defer f.done.Done()
	ticker := time.NewTicker(f.checkEvery)
	defer ticker.Stop()
	for {
		select {
		case <-f.stop:
			return
		case <-ticker.C:
			f.evaluate()
		}
	}
}

func (f *Detector) evaluate() {
	now := time.Now()
	f.mu.Lock()
	type emit struct {
		sub *Subscription
		ev  Event
	}
	var emits []emit
	for s := range f.subs {
		for _, p := range f.peers {
			age := now.Sub(f.lastHB[p])
			s.mu.Lock()
			suspected := s.suspected[p]
			switch {
			case age > s.timeout && !suspected:
				s.suspected[p] = true
				emits = append(emits, emit{s, Event{Peer: p, Suspected: true}})
			case age <= s.timeout && suspected:
				s.suspected[p] = false
				emits = append(emits, emit{s, Event{Peer: p, Suspected: false}})
			}
			s.mu.Unlock()
		}
	}
	f.mu.Unlock()
	for _, e := range emits {
		select {
		case e.sub.events <- e.ev:
		default: // channel full: poller still sees state via Suspected
		}
	}
}

// Subscription is one consumer's view of the failure detector, evaluated
// against its own timeout.
type Subscription struct {
	fd      *Detector
	timeout time.Duration

	mu        sync.Mutex
	suspected map[proc.ID]bool
	events    chan Event
}

// Events returns the channel of suspicion changes.
func (s *Subscription) Events() <-chan Event { return s.events }

// Suspected reports the current suspicion state of p.
func (s *Subscription) Suspected(p proc.ID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.suspected[p]
}

// Suspects returns the currently suspected peers.
func (s *Subscription) Suspects() []proc.ID {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []proc.ID
	for p, v := range s.suspected {
		if v {
			out = append(out, p)
		}
	}
	return out
}

// Close detaches the subscription from the detector.
func (s *Subscription) Close() {
	s.fd.mu.Lock()
	defer s.fd.mu.Unlock()
	delete(s.fd.subs, s)
}
