// Package kvdemo is the small replicated key-value state machine shared by
// cmd/gcsnode's service mode and examples/kvstore — one implementation of
// the wire protocol so the server and the demos cannot drift apart.
//
// Writes are the text operations "put <k> <v>" and "del <k>"; reads are
// "get <k>". The update propagated to backups is the operation itself
// (deterministic, so identical apply order from the broadcast layer yields
// identical state).
package kvdemo

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Store implements replication.PassiveStateMachine plus a local read.
type Store struct {
	mu      sync.Mutex
	data    map[string]string
	applied int
}

// New creates an empty store.
func New() *Store { return &Store{data: make(map[string]string)} }

// Execute validates a write without mutating state; the returned update is
// the operation itself (or nil with an error result for a malformed op).
func (s *Store) Execute(op []byte) ([]byte, []byte) {
	fields := strings.Fields(string(op))
	if len(fields) == 0 {
		return []byte("err: empty op"), nil
	}
	switch fields[0] {
	case "put":
		if len(fields) != 3 {
			return []byte("err: usage put <k> <v>"), nil
		}
		return []byte("ok"), op
	case "del":
		if len(fields) != 2 {
			return []byte("err: usage del <k>"), nil
		}
		return []byte("ok"), op
	default:
		return []byte("err: unknown op " + fields[0]), nil
	}
}

// ApplyUpdate mutates the store; called at every replica in delivery order.
func (s *Store) ApplyUpdate(update []byte) {
	if update == nil {
		return
	}
	fields := strings.Fields(string(update))
	s.mu.Lock()
	defer s.mu.Unlock()
	switch fields[0] {
	case "put":
		s.data[fields[1]] = fields[2]
	case "del":
		delete(s.data, fields[1])
	}
	s.applied++
}

// Read serves "get <k>" from local state (the gateway's read handler).
func (s *Store) Read(op []byte) []byte {
	fields := strings.Fields(string(op))
	if len(fields) != 2 || fields[0] != "get" {
		return []byte("err: usage get <k>")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return []byte(s.data[fields[1]])
}

// Key extracts the routing key from a KV operation ("put <k> <v>",
// "del <k>", "get <k>") — the ShardKey of sharded deployments, so every
// operation on one key lands on one shard. Malformed ops route by their
// full text; they fail validation wherever they land.
func Key(op []byte) []byte {
	fields := strings.Fields(string(op))
	if len(fields) < 2 {
		return op
	}
	return []byte(fields[1])
}

// Snapshot encodes the full store canonically (sorted "k<TAB>v" lines plus
// the applied counter) for replica state transfer. Deterministic: equal
// stores produce equal bytes.
func (s *Store) Snapshot() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.data))
	for k := range s.data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	fmt.Fprintf(&b, "#applied %d\n", s.applied)
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('\t')
		b.WriteString(s.data[k])
		b.WriteByte('\n')
	}
	return []byte(b.String())
}

// Restore replaces the store's state with a Snapshot's encoding — the
// install half of replica state transfer at a joining/recovering node.
func (s *Store) Restore(data []byte) {
	m := make(map[string]string)
	applied := 0
	for _, line := range strings.Split(string(data), "\n") {
		if line == "" {
			continue
		}
		if n, ok := strings.CutPrefix(line, "#applied "); ok {
			if v, err := strconv.Atoi(n); err == nil {
				applied = v
			}
			continue
		}
		if k, v, ok := strings.Cut(line, "\t"); ok {
			m[k] = v
		}
	}
	s.mu.Lock()
	s.data = m
	s.applied = applied
	s.mu.Unlock()
}

// Get returns the value of k ("" if absent).
func (s *Store) Get(k string) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.data[k]
}

// Applied returns how many updates this replica has applied.
func (s *Store) Applied() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.applied
}
