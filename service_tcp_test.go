package gcs_test

// End-to-end service gateway test over real TCP: the group runs in-process
// over the simulated network, but every node exposes its gateway on a real
// TCP port and the client dials over loopback TCP. A full node failure
// (group-level crash plus gateway shutdown) must be survived with zero
// duplicated and zero lost acknowledged operations.

import (
	"fmt"
	"sync"
	"testing"
	"time"

	gcs "repro"
)

// tcpKV is a tiny passively replicated KV store.
type tcpKV struct {
	mu      sync.Mutex
	data    map[string]string
	applies map[string]int
}

func newTCPKV() *tcpKV {
	return &tcpKV{data: make(map[string]string), applies: make(map[string]int)}
}

func (s *tcpKV) Execute(op []byte) ([]byte, []byte) {
	return []byte("ok"), op
}

func (s *tcpKV) ApplyUpdate(update []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var k, v string
	if _, err := fmt.Sscanf(string(update), "put %s %s", &k, &v); err == nil {
		s.data[k] = v
	}
	s.applies[string(update)]++
}

func (s *tcpKV) read(op []byte) []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	var k string
	if _, err := fmt.Sscanf(string(op), "get %s", &k); err == nil {
		return []byte(s.data[k])
	}
	return nil
}

func (s *tcpKV) duplicates() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	for op, n := range s.applies {
		if n > 1 {
			out = append(out, fmt.Sprintf("%s x%d", op, n))
		}
	}
	return out
}

func TestServiceGatewayOverTCP(t *testing.T) {
	members := []gcs.ID{"s1", "s2", "s3"}
	network := gcs.NewNetwork(gcs.WithDelay(0, 2*time.Millisecond), gcs.WithSeed(11))
	defer network.Shutdown()

	kvs := make([]*tcpKV, len(members))
	reps := make([]*gcs.PassiveReplica, len(members))
	nodes := make([]*gcs.Node, len(members))
	listeners := make([]gcs.StreamListener, len(members))
	addrs := make(map[gcs.ID]string, len(members))

	for i, id := range members {
		kvs[i] = newTCPKV()
		reps[i] = gcs.NewPassiveReplica(kvs[i], members)
		node, err := gcs.NewNode(network.Endpoint(id), gcs.Config{
			Self: id, Universe: members, Relation: gcs.PassiveRelation(),
		}, reps[i].DeliverFunc())
		if err != nil {
			t.Fatal(err)
		}
		reps[i].Bind(node)
		nodes[i] = node

		l, err := gcs.ListenServiceTCP("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = l
		addrs[id] = l.Addr()
	}
	for _, nd := range nodes {
		nd.Start()
	}
	defer func() {
		for _, nd := range nodes {
			nd.Stop()
		}
	}()

	gws := make([]*gcs.ServiceGateway, len(members))
	for i, id := range members {
		gws[i] = gcs.Serve(gcs.ServiceGatewayConfig{
			Self:    id,
			Replica: reps[i],
			Read:    kvs[i].read,
			Addrs:   addrs,
		}, listeners[i])
		defer gws[i].Close()
	}
	for _, r := range reps {
		r.StartFailover(60 * time.Millisecond)
		defer r.StopFailover()
	}

	client, err := gcs.Dial(gcs.ServiceClientConfig{
		Addrs:        []string{addrs["s1"], addrs["s2"], addrs["s3"]},
		Dial:         gcs.DialServiceTCP,
		RetryBackoff: 5 * time.Millisecond,
		OpTimeout:    60 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// Writes before the crash.
	for i := 0; i < 5; i++ {
		if _, err := client.Call([]byte(fmt.Sprintf("put k%d v%d", i, i))); err != nil {
			t.Fatal(err)
		}
	}
	if v, err := client.Read([]byte("get k3")); err != nil || string(v) != "v3" {
		t.Fatalf("read k3 = %q, %v", v, err)
	}

	// Full primary failure: group-level crash plus gateway shutdown, so
	// clients see broken TCP connections exactly as with a dead process.
	network.Crash("s1")
	gws[0].Close()

	// Writes across the failover must still be acknowledged exactly once.
	for i := 5; i < 10; i++ {
		if _, err := client.Call([]byte(fmt.Sprintf("put k%d v%d", i, i))); err != nil {
			t.Fatal(err)
		}
	}

	deadline := time.Now().Add(20 * time.Second)
	for {
		kvs[1].mu.Lock()
		n := len(kvs[1].applies)
		kvs[1].mu.Unlock()
		if n == 10 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("new primary applied %d of 10", n)
		}
		time.Sleep(5 * time.Millisecond)
	}
	for i, kv := range kvs[1:] {
		if dups := kv.duplicates(); len(dups) > 0 {
			t.Fatalf("replica %s duplicated: %v", members[i+1], dups)
		}
	}
	// Reads at the new primary observe every write.
	if v, err := client.Read([]byte("get k9")); err != nil || string(v) != "v9" {
		t.Fatalf("read k9 after failover = %q, %v", v, err)
	}
}
