package gcs_test

// End-to-end sharded service over the public API: S parallel replicated
// groups on a 3-node set, every node's S stacks multiplexed over ONE
// simulated-network endpoint (gcs.NewGroupMux), gateways on real loopback
// TCP, and a sharded client routing by key (kvdemo.Key). Covers the whole
// public surface of the sharding feature: NewGroupMux, ServiceShard,
// DialSharded, ShardOf.

import (
	"fmt"
	"testing"
	"time"

	gcs "repro"
	"repro/internal/kvdemo"
)

func TestShardedServiceOverTCP(t *testing.T) {
	const shards = 4
	members := []gcs.ID{"s1", "s2", "s3"}
	network := gcs.NewNetwork(gcs.WithDelay(0, 2*time.Millisecond), gcs.WithSeed(23))
	defer network.Shutdown()

	rotated := func(k int) []gcs.ID {
		k = k % len(members)
		return append(append([]gcs.ID{}, members[k:]...), members[:k]...)
	}

	var (
		muxes   []*gcs.GroupMux
		nodes   []*gcs.Node
		gws     []*gcs.ServiceGateway
		stores  [][]*kvdemo.Store // [node][shard]
		addrs   = make(map[gcs.ID]string, len(members))
		listens []gcs.StreamListener
	)
	for _, id := range members {
		l, err := gcs.ListenServiceTCP("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listens = append(listens, l)
		addrs[id] = l.Addr()
	}
	for i, id := range members {
		mux := gcs.NewGroupMux(network.Endpoint(id), shards)
		muxes = append(muxes, mux)
		var nodeShards []gcs.ServiceShard
		var nodeStores []*kvdemo.Store
		for k := 0; k < shards; k++ {
			store := kvdemo.New()
			rep := gcs.NewPassiveReplica(store, rotated(k))
			node, err := gcs.NewNode(mux.Group(k), gcs.Config{
				Self: id, Universe: members, Relation: gcs.PassiveRelation(),
			}, rep.DeliverFunc())
			if err != nil {
				t.Fatal(err)
			}
			rep.Bind(node)
			node.Start()
			nodes = append(nodes, node)
			nodeShards = append(nodeShards, gcs.ServiceShard{Replica: rep, Read: store.Read})
			nodeStores = append(nodeStores, store)
		}
		stores = append(stores, nodeStores)
		gws = append(gws, gcs.Serve(gcs.ServiceGatewayConfig{
			Self:   id,
			Shards: nodeShards,
			Addrs:  addrs,
		}, listens[i]))
	}
	defer func() {
		for _, gw := range gws {
			gw.Close()
		}
		for _, nd := range nodes {
			nd.Stop()
		}
		for _, mux := range muxes {
			mux.Close()
		}
	}()

	client, err := gcs.DialSharded(gcs.ShardedServiceClientConfig{
		ClientConfig: gcs.ServiceClientConfig{
			Addrs:        []string{addrs["s1"], addrs["s2"], addrs["s3"]},
			Dial:         gcs.DialServiceTCP,
			RetryBackoff: 5 * time.Millisecond,
			OpTimeout:    60 * time.Second,
		},
		Shards:   shards,
		ShardKey: kvdemo.Key,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// Writes hashed across all shards; reads must route to the same shard
	// and observe them (monotonic default = read-your-writes per shard).
	const keys = 24
	for i := 0; i < keys; i++ {
		op := fmt.Sprintf("put key%d val%d", i, i)
		res, err := client.Call([]byte(op))
		if err != nil {
			t.Fatalf("%s: %v", op, err)
		}
		if string(res) != "ok" {
			t.Fatalf("%s -> %q", op, res)
		}
	}
	shardsHit := make(map[int]bool)
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("key%d", i)
		shardsHit[gcs.ShardOf([]byte(key), shards)] = true
		got, err := client.Read([]byte("get " + key))
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != fmt.Sprintf("val%d", i) {
			t.Fatalf("get %s = %q", key, got)
		}
	}
	if len(shardsHit) != shards {
		t.Fatalf("only %d of %d shards exercised by %d keys", len(shardsHit), shards, keys)
	}

	// Every key lives on exactly its shard: the owning shard's replicas
	// converge on the value, other shards never see the key.
	deadline := time.Now().Add(20 * time.Second)
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("key%d", i)
		owner := gcs.ShardOf([]byte(key), shards)
		for node := 0; node < len(members); node++ {
			for stores[node][owner].Get(key) != fmt.Sprintf("val%d", i) {
				if time.Now().After(deadline) {
					t.Fatalf("node %d shard %d never applied %s", node, owner, key)
				}
				time.Sleep(2 * time.Millisecond)
			}
			for k := 0; k < shards; k++ {
				if k != owner && stores[node][k].Get(key) != "" {
					t.Fatalf("%s leaked into shard %d", key, k)
				}
			}
		}
	}
}
