package gcs_test

import (
	"fmt"
	"sync"
	"time"

	gcs "repro"
)

// Greeting is a message type used by the example.
type Greeting struct {
	Text string
}

// Example demonstrates the smallest useful program: a three-node group
// delivering a totally-ordered broadcast.
func Example() {
	gcs.RegisterType(Greeting{})

	var (
		mu    sync.Mutex
		count int
		done  = make(chan struct{})
	)
	cluster, err := gcs.NewCluster(3, gcs.WithDeliver(func(self gcs.ID, d gcs.Delivery) {
		if g, ok := d.Body.(Greeting); ok {
			mu.Lock()
			count++
			if count == 3 { // all three nodes delivered it
				fmt.Printf("everyone delivered %q\n", g.Text)
				close(done)
			}
			mu.Unlock()
		}
	}))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	defer cluster.Stop()

	if err := cluster.Nodes[0].Abcast(Greeting{Text: "hello group"}); err != nil {
		fmt.Println("error:", err)
		return
	}
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		fmt.Println("timeout")
	}
	// Output: everyone delivered "hello group"
}
