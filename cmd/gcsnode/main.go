// Command gcsnode runs one member of a group over real TCP — the same
// stack the examples run in-process, deployed as separate OS processes.
//
// Every member is given the full peer map; each process runs the full
// Figure 9 stack and broadcasts a numbered message once per second while
// printing everything it delivers, so total order is visible across
// terminals.
//
// Example (three shells):
//
//	gcsnode -self a -listen 127.0.0.1:7001 -peers a=127.0.0.1:7001,b=127.0.0.1:7002,c=127.0.0.1:7003
//	gcsnode -self b -listen 127.0.0.1:7002 -peers a=127.0.0.1:7001,b=127.0.0.1:7002,c=127.0.0.1:7003
//	gcsnode -self c -listen 127.0.0.1:7003 -peers a=127.0.0.1:7001,b=127.0.0.1:7002,c=127.0.0.1:7003
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	gcs "repro"
)

// note is the demo message type.
type note struct {
	From string
	Seq  uint64
	Text string
}

func main() {
	var (
		self      = flag.String("self", "", "this process's ID")
		listen    = flag.String("listen", "", "listen address host:port")
		peersSpec = flag.String("peers", "", "comma-separated id=host:port for every member (including self)")
		sendEvery = flag.Duration("send-every", time.Second, "interval between demo broadcasts (0 = silent)")
		useAbcast = flag.Bool("abcast", true, "broadcast with total order (false = rbcast)")
	)
	flag.Parse()
	if err := run(*self, *listen, *peersSpec, *sendEvery, *useAbcast); err != nil {
		fmt.Fprintln(os.Stderr, "gcsnode:", err)
		os.Exit(1)
	}
}

func run(self, listen, peersSpec string, sendEvery time.Duration, useAbcast bool) error {
	if self == "" || listen == "" || peersSpec == "" {
		return fmt.Errorf("-self, -listen and -peers are required")
	}
	peers, err := parsePeers(peersSpec)
	if err != nil {
		return err
	}
	if _, ok := peers[gcs.ID(self)]; !ok {
		return fmt.Errorf("self %q not in peer map", self)
	}
	universe := make([]gcs.ID, 0, len(peers))
	for id := range peers {
		universe = append(universe, id)
	}
	sort.Slice(universe, func(i, j int) bool { return universe[i] < universe[j] })

	gcs.RegisterType(note{})
	tr, err := gcs.NewTCPTransport(gcs.ID(self), listen, peers)
	if err != nil {
		return err
	}
	node, err := gcs.NewNode(tr, gcs.Config{
		Self:     gcs.ID(self),
		Universe: universe,
		// TCP between real processes: slightly relaxed timing defaults.
		RTO:              50 * time.Millisecond,
		HeartbeatEvery:   20 * time.Millisecond,
		SuspicionTimeout: 200 * time.Millisecond,
		ExclusionTimeout: 2 * time.Second,
		StartMonitor:     true,
	}, func(d gcs.Delivery) {
		if n, ok := d.Body.(note); ok {
			fmt.Printf("[deliver %-6s] %s #%d: %s\n", d.Class, n.From, n.Seq, n.Text)
		}
	})
	if err != nil {
		return err
	}
	node.OnView(func(v gcs.View) {
		fmt.Printf("[view] %v\n", v)
	})
	node.Start()
	defer node.Stop()
	fmt.Printf("gcsnode %s up; universe %v\n", self, universe)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	var seq uint64
	var tick <-chan time.Time
	if sendEvery > 0 {
		ticker := time.NewTicker(sendEvery)
		defer ticker.Stop()
		tick = ticker.C
	}
	for {
		select {
		case <-stop:
			fmt.Println("shutting down")
			return nil
		case <-tick:
			seq++
			n := note{From: self, Seq: seq, Text: fmt.Sprintf("hello from %s", self)}
			var err error
			if useAbcast {
				err = node.Abcast(n)
			} else {
				err = node.Rbcast(n)
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "broadcast:", err)
			}
		}
	}
}

func parsePeers(spec string) (map[gcs.ID]string, error) {
	peers := make(map[gcs.ID]string)
	for _, part := range strings.Split(spec, ",") {
		id, addr, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("bad peer %q (want id=host:port)", part)
		}
		peers[gcs.ID(id)] = addr
	}
	if len(peers) == 0 {
		return nil, fmt.Errorf("empty peer map")
	}
	return peers, nil
}
