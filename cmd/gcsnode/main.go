// Command gcsnode runs one member of a group over real TCP — the same
// stack the examples run in-process, deployed as separate OS processes.
//
// Every member is given the full peer map; each process runs the full
// Figure 9 stack. By default it broadcasts a numbered message once per
// second while printing everything it delivers, so total order is visible
// across terminals.
//
// Example (three shells):
//
//	gcsnode -self a -listen 127.0.0.1:7001 -peers a=127.0.0.1:7001,b=127.0.0.1:7002,c=127.0.0.1:7003
//	gcsnode -self b -listen 127.0.0.1:7002 -peers a=127.0.0.1:7001,b=127.0.0.1:7002,c=127.0.0.1:7003
//	gcsnode -self c -listen 127.0.0.1:7003 -peers a=127.0.0.1:7001,b=127.0.0.1:7002,c=127.0.0.1:7003
//
// With -service-listen (and -service-peers naming every member's service
// address), the node instead runs a passively replicated key-value store
// and exposes it to networked clients through the service gateway:
//
//	gcsnode -self a -listen 127.0.0.1:7001 -peers ... \
//	        -service-listen 127.0.0.1:8001 \
//	        -service-peers a=127.0.0.1:8001,b=127.0.0.1:8002,c=127.0.0.1:8003
//
// Clients (see examples/kvstore for the client side) send "put <k> <v>",
// "del <k>" writes and "get <k>" reads.
//
// With -service-shards S (all members passing the same S), the key space is
// hashed across S parallel replicated groups: every node runs S complete
// protocol stacks multiplexed over its single TCP endpoint (group mux), the
// per-shard primaries are spread across the members, and clients route each
// operation to its key's shard (gcs.DialSharded with kvdemo.Key).
//
// With -join, the process attaches to a RUNNING deployment as a catch-up
// follower instead of a full member: it installs a replica snapshot from
// the group (state transfer) and then follows the delivered-command log,
// serving reads at backup parity through its gateway while writes redirect
// to the primaries. A member that crashed and lost its disk rejoins this
// way under its old ID with a higher -incarnation.
//
// With -data-dir, the node is DURABLE: every shard logs its deliveries to
// a segmented WAL under <data-dir>/shard<k> (one fsync per commit window,
// riding the group-commit batcher) and seals with a snapshot on graceful
// shutdown. A restart — even after whole-cluster power loss — replays its
// own disk first, aligns with its peers by pulling only the delta it
// missed, and only then starts serving. Bump -incarnation on every
// restart; SIGINT/SIGTERM shut down gracefully (drain the gateway, final
// WAL sync + snapshot, exit 0).
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	gcs "repro"
	"repro/internal/kvdemo"
)

// note is the demo message type.
type note struct {
	From string
	Seq  uint64
	Text string
}

func main() {
	var (
		self         = flag.String("self", "", "this process's ID")
		listen       = flag.String("listen", "", "listen address host:port")
		peersSpec    = flag.String("peers", "", "comma-separated id=host:port for every member (including self)")
		sendEvery    = flag.Duration("send-every", time.Second, "interval between demo broadcasts (0 = silent)")
		useAbcast    = flag.Bool("abcast", true, "broadcast with total order (false = rbcast)")
		svcListen    = flag.String("service-listen", "", "expose the service gateway on this address (enables the replicated KV store)")
		svcPeersSpec = flag.String("service-peers", "", "comma-separated id=host:port of every member's service gateway (for redirect hints)")
		svcBatch     = flag.Bool("service-batch", false, "group-commit batching: coalesce concurrent session writes into one broadcast")
		svcShards    = flag.Int("service-shards", 1, "shard the key space across this many parallel replicated groups (all members must agree)")
		svcTTL       = flag.Duration("service-session-ttl", time.Hour, "garbage-collect idle disconnected sessions after this lease (0 = never)")
		svcLease     = flag.Duration("service-lease-ttl", 0, "replicated session lease: expire (session, seq) dedup records idle for this long as ordered messages, bounding the replicated table (0 = never)")
		svcWatchdog  = flag.Duration("service-watchdog", 2*time.Second, "quorum-progress watchdog: a primary whose ordered sequence stalls this long with work pending answers new writes DEGRADED (fail fast, retryable) instead of queueing them to their timeouts; keep it above the failover suspicion timeout (0 = disabled)")
		svcLdrLease  = flag.Duration("service-leader-lease", 0, "leadership lease TTL: the primary renews an ordered lease and serves linearizable reads locally while it holds (no per-read barrier); TTL plus a TTL/4 drift margin must fit under the 500ms failover suspicion timeout, so at most 400ms (0 = disabled)")
		join         = flag.Bool("join", false, "join a RUNNING service deployment as a catch-up follower: install a replica snapshot from the group and follow its command log, serving reads at backup parity (requires -service-listen; -peers lists the full members)")
		incarnation  = flag.Uint64("incarnation", 1, "with -join or -data-dir: this process's incarnation; increase it on every restart")
		dataDir      = flag.String("data-dir", "", "durable storage root (requires -service-listen): shard k's WAL segments and snapshots live in <data-dir>/shard<k>; every acknowledged write is fsynced before its ack, and a restart replays local disk, then pulls only the missing delta from the group")
		adminListen  = flag.String("admin-listen", "", "expose the admin/debug HTTP endpoint on this address: /metrics (Prometheus), /healthz, /debug/traces, /debug/pprof")
	)
	flag.Parse()
	if err := run(*self, *listen, *peersSpec, *sendEvery, *useAbcast, *svcListen, *svcPeersSpec, *svcBatch, *svcShards, *svcTTL, *svcLease, *svcWatchdog, *svcLdrLease, *join, *incarnation, *dataDir, *adminListen); err != nil {
		fmt.Fprintln(os.Stderr, "gcsnode:", err)
		os.Exit(1)
	}
}

// admin bundles the optional observability wiring of one gcsnode process:
// nil when -admin-listen is absent, in which case every hookup below is a
// no-op (the instruments stay unregistered and the hot paths pay a single
// nil-check).
type admin struct {
	reg    *gcs.MetricsRegistry
	tracer *gcs.OpTracer
	scope  *gcs.MetricsScope // node=<self>
	health []gcs.AdminHealthCheck
}

// newAdmin builds the registry/tracer pair for one node.
func newAdmin(self string) *admin {
	reg := gcs.NewMetricsRegistry()
	return &admin{
		reg:    reg,
		tracer: gcs.NewOpTracer(gcs.OpTracerConfig{}),
		scope:  reg.Scope(gcs.Label("node", self)),
	}
}

// shardScope returns the node scope narrowed to one shard.
func (a *admin) shardScope(k int) *gcs.MetricsScope {
	if a == nil {
		return nil
	}
	return a.scope.With(gcs.Label("shard", strconv.Itoa(k)))
}

// check appends a /healthz probe.
func (a *admin) check(name string, fn func() (bool, string)) {
	if a != nil {
		a.health = append(a.health, gcs.AdminHealthCheck{Name: name, Check: fn})
	}
}

// freshnessCheck appends a commit-freshness probe for one shard: the
// replicated lease ticks the commit index LeaseTTLTicks times per TTL, so
// an index that has not moved for 2×TTL means the shard's ordered path has
// stalled (no quorum, partitioned primary). Only meaningful with the lease
// enabled — an idle deployment without it legitimately never advances.
func (a *admin) freshnessCheck(k int, lease time.Duration, commitIndex func() uint64) {
	if a == nil || lease <= 0 {
		return
	}
	var mu sync.Mutex
	lastIdx := uint64(0)
	lastMove := time.Now()
	stale := 2 * lease
	a.check(fmt.Sprintf("shard%d_commit_fresh", k), func() (bool, string) {
		idx := commitIndex()
		mu.Lock()
		defer mu.Unlock()
		if idx > lastIdx {
			lastIdx = idx
			lastMove = time.Now()
		}
		age := time.Since(lastMove)
		return age < stale, fmt.Sprintf("commit=%d last_advance=%s ago", idx, age.Round(time.Millisecond))
	})
}

// storageCheck appends the /healthz storage block for one durable shard:
// WAL footprint, snapshot position, fsync count and the restart replay
// counters — always healthy while the engine answers, informational by
// design (a torn tail cut at open is recovery working, not a failure).
func (a *admin) storageCheck(k int, stats func() gcs.StorageStats) {
	if a == nil {
		return
	}
	a.check(fmt.Sprintf("shard%d_storage", k), func() (bool, string) {
		st := stats()
		return true, fmt.Sprintf("wal_bytes=%d segments=%d snapshot@%d fsyncs=%d torn_tails=%d replayed_records=%d replayed_snapshot@%d",
			st.WALBytes, st.Segments, st.SnapshotIndex, st.Syncs, st.TornTails,
			st.Replayed.Records, st.Replayed.SnapshotIndex)
	})
}

// openShardStorage opens (or recovers) shard k's durable engine under
// dataDir, reporting what open-time recovery had to cut.
func openShardStorage(dataDir string, k int) (*gcs.FileStorage, error) {
	eng, err := gcs.OpenFileStorage(filepath.Join(dataDir, fmt.Sprintf("shard%d", k)), gcs.FileStorageConfig{})
	if err != nil {
		return nil, fmt.Errorf("shard %d storage: %w", k, err)
	}
	if st := eng.Stats(); st.TornTails > 0 {
		fmt.Printf("[storage] shard %d: cut %d torn WAL tail(s) at open (power died mid-write)\n", k, st.TornTails)
	}
	return eng, nil
}

// serve binds the admin endpoint and starts serving; the returned closer
// stops it.
func (a *admin) serve(addr string) (func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("admin listen: %w", err)
	}
	srv := &http.Server{Handler: gcs.NewAdminHandler(gcs.AdminConfig{
		Registry: a.reg,
		Tracer:   a.tracer,
		Health:   a.health,
	})}
	go func() { _ = srv.Serve(ln) }()
	fmt.Printf("admin endpoint on http://%s/ (/metrics /healthz /debug/traces /debug/pprof)\n", ln.Addr())
	return func() { _ = srv.Close() }, nil
}

func run(self, listen, peersSpec string, sendEvery time.Duration, useAbcast bool, svcListen, svcPeersSpec string, svcBatch bool, svcShards int, svcTTL, svcLease, svcWatchdog, svcLdrLease time.Duration, join bool, incarnation uint64, dataDir, adminListen string) error {
	if self == "" || listen == "" || peersSpec == "" {
		return fmt.Errorf("-self, -listen and -peers are required")
	}
	if dataDir != "" && svcListen == "" {
		return fmt.Errorf("-data-dir requires -service-listen (durability lives under the replicated service)")
	}
	peers, err := parsePeers(peersSpec)
	if err != nil {
		return err
	}
	if _, ok := peers[gcs.ID(self)]; !ok && !join {
		// A joining follower is NOT a member: its -peers lists the running
		// members (the donors) only; they learn its dial-back address from
		// the transport handshake.
		return fmt.Errorf("self %q not in peer map", self)
	}
	universe := make([]gcs.ID, 0, len(peers))
	for id := range peers {
		universe = append(universe, id)
	}
	sort.Slice(universe, func(i, j int) bool { return universe[i] < universe[j] })

	serviceMode := svcListen != ""
	if svcShards < 1 {
		return fmt.Errorf("-service-shards %d < 1", svcShards)
	}
	baseCfg := gcs.Config{
		Self:     gcs.ID(self),
		Universe: universe,
		// TCP between real processes: slightly relaxed timing defaults.
		RTO:              50 * time.Millisecond,
		HeartbeatEvery:   20 * time.Millisecond,
		SuspicionTimeout: 200 * time.Millisecond,
		ExclusionTimeout: 2 * time.Second,
		StartMonitor:     true,
	}

	tr, err := gcs.NewTCPTransport(gcs.ID(self), listen, peers)
	if err != nil {
		return err
	}

	var adm *admin
	if adminListen != "" {
		adm = newAdmin(self)
		gcs.RegisterTransportMetrics(tr, adm.scope)
	}

	if join {
		// Catch-up follower: no vote, no broadcast — install a snapshot
		// from the running group, then follow its command log forever,
		// serving reads at backup parity through the local gateway.
		if !serviceMode {
			return fmt.Errorf("-join requires -service-listen (followers exist to serve the KV service)")
		}
		donors := make([]gcs.ID, 0, len(universe))
		for _, id := range universe {
			if id != gcs.ID(self) {
				donors = append(donors, id)
			}
		}
		if len(donors) == 0 {
			return fmt.Errorf("-join needs at least one donor in -peers")
		}
		mux := gcs.NewGroupMux(tr, svcShards)
		defer mux.Close()
		svcAddrs, err := parseOptionalPeers(svcPeersSpec)
		if err != nil {
			return fmt.Errorf("service peers: %w", err)
		}
		var shards []gcs.ServiceShard
		var followers []*gcs.Follower
		for k := 0; k < svcShards; k++ {
			store := kvdemo.New()
			fcfg := gcs.FollowerConfig{
				Self:         gcs.ID(self),
				Donors:       donors,
				Incarnation:  incarnation,
				Snapshot:     store.Snapshot,
				Restore:      store.Restore,
				RTO:          50 * time.Millisecond,
				PullInterval: 20 * time.Millisecond,
				PullTimeout:  2 * time.Second,
			}
			if dataDir != "" {
				eng, err := openShardStorage(dataDir, k)
				if err != nil {
					return err
				}
				fcfg.Storage = eng
			}
			f, err := gcs.NewFollowerNode(mux.Group(k), store, fcfg)
			if err != nil {
				return fmt.Errorf("shard %d: %w", k, err)
			}
			if rs := f.Replayed; rs.Records > 0 || rs.SnapshotIndex > 0 {
				fmt.Printf("[storage] shard %d: replayed snapshot@%d + %d WAL records from disk; pulling only the delta\n",
					k, rs.SnapshotIndex, rs.Records)
			}
			defer func(k int, f *gcs.Follower) {
				if err := f.Stop(); err != nil {
					fmt.Fprintf(os.Stderr, "shard %d: seal storage: %v\n", k, err)
				} else if dataDir != "" {
					fmt.Printf("[storage] shard %d sealed (WAL synced, snapshot written)\n", k)
				}
			}(k, f)
			followers = append(followers, f)
			shards = append(shards, gcs.ServiceShard{Replica: f.Replica, Read: store.Read})
			if adm != nil {
				f.RegisterMetrics(adm.shardScope(k))
				k, f := k, f
				adm.check(fmt.Sprintf("shard%d_installed", k), func() (bool, string) {
					select {
					case <-f.Installed():
						return true, fmt.Sprintf("commit=%d", f.Replica.CommitIndex())
					default:
						return false, "catching up"
					}
				})
				adm.freshnessCheck(k, svcLease, f.Replica.CommitIndex)
				if dataDir != "" {
					adm.storageCheck(k, f.Replica.StorageStats)
				}
			}
		}
		l, err := gcs.ListenServiceTCP(svcListen)
		if err != nil {
			return err
		}
		gw := gcs.Serve(gcs.ServiceGatewayConfig{
			Self:   gcs.ID(self),
			Shards: shards,
			Addrs:  svcAddrs,
			// Same lease knobs as a member gateway: with LeaseTTL set, the
			// follower's janitor forwards its sessions' renewals to the
			// primary (replication.LeaseRenew), so clients attached HERE
			// keep their replicated dedup records alive.
			SessionTTL: svcTTL,
			LeaseTTL:   svcLease,
		}, l)
		defer gw.Close()
		if adm != nil {
			gw.RegisterMetrics(adm.scope)
			gw.SetTracer(adm.tracer)
			stopAdmin, err := adm.serve(adminListen)
			if err != nil {
				return err
			}
			defer stopAdmin()
		}
		fmt.Printf("gcsnode %s joining as follower (incarnation %d); donors %v; %d shard(s); gateway on %s\n",
			self, incarnation, donors, svcShards, l.Addr())
		go func() {
			for k, f := range followers {
				<-f.Installed()
				fmt.Printf("[join] shard %d installed (commit index %d)\n", k, f.Replica.CommitIndex())
			}
			fmt.Println("[join] caught up on every shard; serving reads at backup parity")
		}()
		stop := make(chan os.Signal, 1)
		signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
		<-stop
		if dataDir != "" {
			fmt.Println("shutting down: draining gateway sessions, sealing WAL + snapshot")
		} else {
			fmt.Println("shutting down")
		}
		return nil
	}

	var node *gcs.Node // demo-mode broadcaster (nil in service mode)
	if serviceMode {
		// One replicated group per shard, every group's full protocol stack
		// multiplexed over the single TCP endpoint. Shard k's replica list
		// is the universe rotated by k, spreading the per-shard primaries
		// across the node set.
		mux := gcs.NewGroupMux(tr, svcShards)
		defer mux.Close()
		svcAddrs, err := parseOptionalPeers(svcPeersSpec)
		if err != nil {
			return fmt.Errorf("service peers: %w", err)
		}
		var shards []gcs.ServiceShard
		type memberShard struct {
			k       int
			store   *kvdemo.Store
			replica *gcs.PassiveReplica
			rec     *gcs.ReplicaRecovery
		}
		var members []*memberShard
		// Phase 1 — assemble and start every shard's stack. Durable shards
		// replay their own disk BEFORE the stack runs, so every peer answers
		// sync pulls from its replayed height during phase 2.
		for k := 0; k < svcShards; k++ {
			store := kvdemo.New()
			view := append(append([]gcs.ID{}, universe[k%len(universe):]...), universe[:k%len(universe)]...)
			replica := gcs.NewPassiveReplica(store, view)
			replica.SetSnapshotter(gcs.ReplicaSnapshotter{Snapshot: store.Snapshot, Restore: store.Restore})
			cfg := baseCfg
			cfg.Relation = gcs.PassiveRelation()
			// State transfer for mid-life joiners (gcsnode -join): the hook
			// captures the replica snapshot at the ordered join's delivery
			// point.
			cfg.Snapshot = replica.EncodeSnapshot
			cfg.Restore = func(b []byte) { _ = replica.InstallSnapshot(b) }
			if dataDir != "" {
				eng, err := openShardStorage(dataDir, k)
				if err != nil {
					return err
				}
				replica.SetStorage(gcs.ReplicaStorageConfig{Engine: eng})
				rs, err := replica.ReplayStorage()
				if err != nil {
					return fmt.Errorf("shard %d: replay: %w", k, err)
				}
				if rs.SnapshotIndex > 0 || rs.Records > 0 {
					fmt.Printf("[storage] shard %d: replayed snapshot@%d + %d WAL records (%d ops) from disk\n",
						k, rs.SnapshotIndex, rs.Records, rs.Ops)
				}
				// Sealed on the way out, AFTER the stack stops delivering:
				// final WAL sync plus a shutdown snapshot, so the next start
				// replays without needing a donor.
				rep := replica
				defer func(k int) {
					if err := rep.CloseStorage(); err != nil {
						fmt.Fprintf(os.Stderr, "shard %d: seal storage: %v\n", k, err)
					} else {
						fmt.Printf("[storage] shard %d sealed (WAL synced, snapshot written)\n", k)
					}
				}(k)
				// A restarted durable member must not be mistaken for its
				// previous life by peers' reliable channels.
				cfg.Incarnation = incarnation
			}
			shardNode, err := gcs.NewNode(mux.Group(k), cfg, replica.DeliverFunc())
			if err != nil {
				return fmt.Errorf("shard %d: %w", k, err)
			}
			if k == 0 {
				shardNode.OnView(func(v gcs.View) {
					fmt.Printf("[view] %v\n", v)
				})
			}
			var rec *gcs.ReplicaRecovery
			if dataDir != "" {
				// Registers the donor side too — the durable replacement for
				// ServeReplicaSync, plus the restart-alignment runner.
				rec = gcs.NewReplicaRecovery(shardNode, replica, universe)
			} else {
				// Donor side of the follower state-transfer protocol; must be
				// registered before the stack starts.
				gcs.ServeReplicaSync(shardNode, replica)
			}
			// Bind before Start: deliveries may arrive as soon as the stack
			// runs.
			replica.Bind(shardNode)
			shardNode.Start()
			defer shardNode.Stop()
			members = append(members, &memberShard{k: k, store: store, replica: replica, rec: rec})
			if adm != nil {
				scope := adm.shardScope(k)
				shardNode.RegisterMetrics(scope)
				replica.RegisterMetrics(scope)
				replica.SetTracer(adm.tracer)
				k, sn, rep := k, shardNode, replica
				quorum := len(universe)/2 + 1
				adm.check(fmt.Sprintf("shard%d_quorum", k), func() (bool, string) {
					v := sn.View()
					return len(v.Members) >= quorum,
						fmt.Sprintf("view %v (need %d)", v.Members, quorum)
				})
				adm.check(fmt.Sprintf("shard%d_primary", k), func() (bool, string) {
					p := rep.Primary()
					return p != "", fmt.Sprintf("primary=%s commit=%d epoch=%d", p, rep.CommitIndex(), rep.Epoch())
				})
				adm.check(fmt.Sprintf("shard%d_quorum_progress", k), func() (bool, string) {
					if rep.Degraded() {
						return false, fmt.Sprintf("degraded: quorum progress stalled, failing writes fast (trips=%d)", rep.DegradedTrips())
					}
					return true, fmt.Sprintf("ok (trips=%d)", rep.DegradedTrips())
				})
				adm.freshnessCheck(k, svcLease, rep.CommitIndex)
				if dataDir != "" {
					adm.storageCheck(k, rep.StorageStats)
				}
			}
		}

		// Phase 2 — durable restart alignment: each shard pulls only the
		// delta its disk missed from whichever peers answer, before anything
		// serves clients. A fresh deployment (empty dirs, peers still
		// booting) settles immediately. All shards align concurrently.
		if dataDir != "" {
			fmt.Printf("[storage] aligning %d shard(s) with the group before serving\n", svcShards)
			errc := make(chan error, len(members))
			for _, s := range members {
				go func(s *memberShard) {
					if err := s.rec.Run(30 * time.Second); err != nil {
						errc <- fmt.Errorf("shard %d recovery: %w", s.k, err)
						return
					}
					st := s.rec.Stats()
					fmt.Printf("[storage] shard %d aligned at commit index %d (%d entries, %d snapshots pulled over %d rounds)\n",
						s.k, s.replica.CommitIndex(), st.Entries, st.Snapshots, st.Rounds)
					errc <- nil
				}(s)
			}
			for range members {
				if err := <-errc; err != nil {
					return err
				}
			}
		}

		// The lease windows must be disjoint from a successor's first writes:
		// TTL + Margin (TTL/4 default) may not exceed the failover suspicion
		// timeout below, or a deposed primary could still be inside its
		// nominal lease when the group elects around it.
		const suspicion = 500 * time.Millisecond
		if svcLdrLease > 0 && svcLdrLease+svcLdrLease/4 > suspicion {
			return fmt.Errorf("-service-leader-lease %v too long: TTL + TTL/4 margin must fit under the %v failover suspicion timeout (max %v)",
				svcLdrLease, suspicion, suspicion*4/5)
		}

		// Phase 3 — only an aligned replica may campaign or batch.
		for _, s := range members {
			s.replica.StartFailover(suspicion)
			defer s.replica.StopFailover()
			if svcWatchdog > 0 {
				// Above the failover suspicion timeout, or an ordinary
				// election would look like a stall.
				s.replica.StartWatchdog(gcs.ReplicaWatchdogConfig{StallTimeout: svcWatchdog})
				defer s.replica.StopWatchdog()
			}
			if svcBatch {
				s.replica.EnableBatching(gcs.BatchConfig{})
				defer s.replica.StopBatching()
			}
			if svcLdrLease > 0 {
				s.replica.EnableLeaderLease(gcs.LeaderLeaseConfig{TTL: svcLdrLease})
				defer s.replica.DisableLeaderLease()
			}
			shards = append(shards, gcs.ServiceShard{Replica: s.replica, Read: s.store.Read})
		}
		l, err := gcs.ListenServiceTCP(svcListen)
		if err != nil {
			return err
		}
		gw := gcs.Serve(gcs.ServiceGatewayConfig{
			Self:       gcs.ID(self),
			Shards:     shards,
			Addrs:      svcAddrs,
			Batching:   svcBatch,
			SessionTTL: svcTTL,
			LeaseTTL:   svcLease,
		}, l)
		defer gw.Close()
		if adm != nil {
			gw.RegisterMetrics(adm.scope)
			gw.SetTracer(adm.tracer)
			stopAdmin, err := adm.serve(adminListen)
			if err != nil {
				return err
			}
			defer stopAdmin()
		}
		fmt.Printf("gcsnode %s up; universe %v; %d shard(s); service gateway on %s\n",
			self, universe, svcShards, l.Addr())
	} else {
		gcs.RegisterType(note{})
		node, err = gcs.NewNode(tr, baseCfg, func(d gcs.Delivery) {
			if n, ok := d.Body.(note); ok {
				fmt.Printf("[deliver %-6s] %s #%d: %s\n", d.Class, n.From, n.Seq, n.Text)
			}
		})
		if err != nil {
			return err
		}
		node.OnView(func(v gcs.View) {
			fmt.Printf("[view] %v\n", v)
		})
		node.Start()
		defer node.Stop()
		if adm != nil {
			node.RegisterMetrics(adm.scope)
			stopAdmin, err := adm.serve(adminListen)
			if err != nil {
				return err
			}
			defer stopAdmin()
		}
		fmt.Printf("gcsnode %s up; universe %v\n", self, universe)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	var seq uint64
	var tick <-chan time.Time
	if !serviceMode && sendEvery > 0 {
		ticker := time.NewTicker(sendEvery)
		defer ticker.Stop()
		tick = ticker.C
	}
	for {
		select {
		case <-stop:
			if dataDir != "" {
				fmt.Println("shutting down: draining gateway sessions, sealing WAL + snapshot")
			} else {
				fmt.Println("shutting down")
			}
			return nil
		case <-tick:
			seq++
			n := note{From: self, Seq: seq, Text: fmt.Sprintf("hello from %s", self)}
			var err error
			if useAbcast {
				err = node.Abcast(n)
			} else {
				err = node.Rbcast(n)
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "broadcast:", err)
			}
		}
	}
}

// parseOptionalPeers parses an id=addr list, returning an empty map for "".
func parseOptionalPeers(spec string) (map[gcs.ID]string, error) {
	if spec == "" {
		return make(map[gcs.ID]string), nil
	}
	return parsePeers(spec)
}

func parsePeers(spec string) (map[gcs.ID]string, error) {
	peers := make(map[gcs.ID]string)
	for _, part := range strings.Split(spec, ",") {
		id, addr, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("bad peer %q (want id=host:port)", part)
		}
		peers[gcs.ID(id)] = addr
	}
	if len(peers) == 0 {
		return nil, fmt.Errorf("empty peer map")
	}
	return peers, nil
}
