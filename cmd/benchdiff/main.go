// Command benchdiff compares two JSON-lines benchmark files (as produced by
// `gcsbench service`, `service-reads`, `service-shards`) row by row and
// prints the relative change of the headline metrics. It is REPORT-ONLY:
// the exit code is always 0 — the point is a visible trajectory in CI logs
// against the baselines committed in-tree (BENCH_*.json), not a gate (the
// shared CI runners are far too noisy for bench numbers to block a merge).
//
// Usage: benchdiff <baseline.json> <current.json>
//
// Rows are joined on their dimension fields (experiment, batch, sessions,
// level, profile, shards, pipeline — everything that is not a measured
// metric); rows present on only one side are listed as added/removed.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// metrics are the measured (non-dimension) fields, with the headline ones
// compared explicitly.
var metrics = map[string]bool{
	"duration_s": true, "ops": true, "ops_per_s": true,
	"reads": true, "reads_per_s": true,
	"mean_us": true, "p50_us": true, "p99_us": true,
	"batches": true, "max_batch": true,
	"barriers": true, "barrier_reads": true, "max_coalesced": true,
	"lease_reads": true, "lease_fallbacks": true, "too_stale": true,
	"overhead_pct": true, "hist_record_ns": true, "hist_overflow": true,
	"fsyncs": true, "fsyncs_per_window": true, "fsync_p99_us": true,
	"wal_bytes": true, "durable_tax_pct": true,
}

// headline metrics shown in the diff, in order, with direction of "better".
var headline = []struct {
	field  string
	upGood bool
}{
	{"ops_per_s", true},
	{"reads_per_s", true},
	{"p50_us", false},
	{"p99_us", false},
	{"hist_record_ns", false},
}

func load(path string) (map[string]map[string]float64, []string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	rows := make(map[string]map[string]float64)
	var order []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || !strings.HasPrefix(line, "{") {
			continue
		}
		var raw map[string]any
		if err := json.Unmarshal([]byte(line), &raw); err != nil {
			continue
		}
		var keyParts []string
		vals := make(map[string]float64)
		fields := make([]string, 0, len(raw))
		for k := range raw {
			fields = append(fields, k)
		}
		sort.Strings(fields)
		for _, k := range fields {
			if metrics[k] {
				if f, ok := raw[k].(float64); ok {
					vals[k] = f
				}
				continue
			}
			keyParts = append(keyParts, fmt.Sprintf("%s=%v", k, raw[k]))
		}
		key := strings.Join(keyParts, " ")
		if _, dup := rows[key]; !dup {
			order = append(order, key)
		}
		rows[key] = vals
	}
	return rows, order, sc.Err()
}

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff <baseline.json> <current.json>")
		os.Exit(0) // report-only, even on misuse
	}
	base, baseOrder, err := load(os.Args[1])
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v (skipping diff)\n", err)
		return
	}
	cur, curOrder, err := load(os.Args[2])
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v (skipping diff)\n", err)
		return
	}

	fmt.Printf("benchdiff %s -> %s\n", os.Args[1], os.Args[2])
	for _, key := range baseOrder {
		b := base[key]
		c, ok := cur[key]
		if !ok {
			fmt.Printf("  removed: %s\n", key)
			continue
		}
		var parts []string
		for _, h := range headline {
			bv, bok := b[h.field]
			cv, cok := c[h.field]
			if !bok || !cok || bv == 0 {
				continue
			}
			delta := (cv - bv) / bv * 100
			arrow := ""
			switch {
			case delta > 5 && h.upGood, delta < -5 && !h.upGood:
				arrow = " (better)"
			case delta < -5 && h.upGood, delta > 5 && !h.upGood:
				arrow = " (worse)"
			}
			parts = append(parts, fmt.Sprintf("%s %+.1f%%%s", h.field, delta, arrow))
		}
		// A row whose latency histogram overflowed reports CLAMPED tail
		// quantiles (telemetry.Histogram.Overflow): its p99 understates the
		// truth, so flag either side rather than diff a lie silently.
		if b["hist_overflow"] > 0 || c["hist_overflow"] > 0 {
			parts = append(parts, fmt.Sprintf(
				"TAIL OUT OF HISTOGRAM RANGE (overflow base=%.0f cur=%.0f; p99 clamped)",
				b["hist_overflow"], c["hist_overflow"]))
		}
		if len(parts) > 0 {
			fmt.Printf("  %s: %s\n", key, strings.Join(parts, ", "))
		}
	}
	for _, key := range curOrder {
		if _, ok := base[key]; !ok {
			fmt.Printf("  added: %s\n", key)
		}
	}
}
