// Command promlint validates Prometheus text exposition (format 0.0.4):
// it fetches -url (or reads stdin) and fails with a diagnostic if the
// exposition is malformed — bad metric or label names, non-numeric values,
// samples preceding their TYPE line, duplicate TYPE declarations.
//
// CI scrapes a live gcsnode's /metrics through this linter so a formatting
// regression in the telemetry exposition fails the build rather than
// silently breaking scrapers.
//
//	promlint -url http://127.0.0.1:9001/metrics
//	curl -s http://127.0.0.1:9001/metrics | promlint
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"repro/internal/telemetry"
)

func main() {
	var (
		url     = flag.String("url", "", "metrics endpoint to fetch (empty = read stdin)")
		timeout = flag.Duration("timeout", 5*time.Second, "fetch timeout")
	)
	flag.Parse()
	if err := run(*url, *timeout); err != nil {
		fmt.Fprintln(os.Stderr, "promlint:", err)
		os.Exit(1)
	}
	fmt.Println("promlint: exposition ok")
}

func run(url string, timeout time.Duration) error {
	var r io.Reader = os.Stdin
	if url != "" {
		client := &http.Client{Timeout: timeout}
		resp, err := client.Get(url)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("GET %s: %s", url, resp.Status)
		}
		r = resp.Body
	}
	return telemetry.ValidateExposition(r)
}
