package main

import (
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/proc"
	"repro/internal/replication"
	"repro/internal/service"
	"repro/internal/telemetry"
	"repro/internal/transport"
)

// ---- E12: service gateway ------------------------------------------------
//
// Client-observed throughput and latency of the networked service layer as
// the number of concurrent sessions grows, with and without group-commit
// batching. Every session is a closed loop (one outstanding write at a
// time). Unbatched, every write pays its own g-broadcast round trip, which
// saturates past a handful of sessions; batched, the primary coalesces all
// sessions' concurrent writes into one g-broadcast per commit window, so
// throughput keeps scaling while the single-session latency stays within
// the (zero by default) max batch delay. Emits one JSON record per row
// alongside the table.

// svcRecord is the JSON shape of one measurement row.
type svcRecord struct {
	Experiment string  `json:"experiment"`
	Batch      bool    `json:"batch"`
	Sessions   int     `json:"sessions"`
	DurationS  float64 `json:"duration_s"`
	Ops        uint64  `json:"ops"`
	OpsPerSec  float64 `json:"ops_per_s"`
	MeanUS     float64 `json:"mean_us"`
	P50US      float64 `json:"p50_us"`
	P99US      float64 `json:"p99_us"`
	Batches    uint64  `json:"batches"`   // broadcasts carrying the ops (0 unbatched)
	MaxBatch   int     `json:"max_batch"` // largest coalesced batch (0 unbatched)
}

// benchSM is a trivially cheap passive state machine.
type benchSM struct{ applied atomic.Uint64 }

func (b *benchSM) Execute(op []byte) ([]byte, []byte) { return op, op }
func (b *benchSM) ApplyUpdate([]byte)                 { b.applied.Add(1) }
func (b *benchSM) read(op []byte) []byte              { return op }

func experimentService() error {
	fmt.Println("== E12 — service gateway: client throughput vs concurrent sessions ==")
	fmt.Println("   closed-loop networked clients over memnet streams; writes only")
	fmt.Printf("%-6s %-10s %10s %12s %10s %10s %10s\n",
		"batch", "sessions", "ops", "ops/s", "mean", "p99", "batches")

	const runFor = time.Second
	for _, batch := range []bool{false, true} {
		for _, sessions := range []int{1, 4, 16, 64} {
			rec, err := runService(sessions, batch, runFor)
			if err != nil {
				return err
			}
			fmt.Printf("%-6v %-10d %10d %12.0f %10v %10v %10d\n",
				rec.Batch, rec.Sessions, rec.Ops, rec.OpsPerSec,
				time.Duration(rec.MeanUS*float64(time.Microsecond)).Round(time.Microsecond),
				time.Duration(rec.P99US*float64(time.Microsecond)).Round(time.Microsecond),
				rec.Batches)
			line, err := json.Marshal(rec)
			if err != nil {
				return err
			}
			fmt.Println(string(line))
		}
	}
	return nil
}

// svcHarness is one benchmark cluster: 3 nodes, a gateway each. When fault
// is set, every node's transport is wrapped in an (idle) FaultTransport —
// the pass-through-cost configuration E18 measures.
type svcHarness struct {
	network *transport.Network
	nodes   []*core.Node
	reps    []*replication.Passive
	sms     []*benchSM
	gws     []*service.Gateway
	faults  []*transport.FaultTransport
}

func buildSvcHarness(seed int64, batch, fault bool) (*svcHarness, error) {
	h := &svcHarness{network: newNet(seed)}
	members := ids(3, "s")
	addrs := make(map[proc.ID]string)
	for _, id := range members {
		addrs[id] = string(id)
	}
	for _, id := range members {
		sm := &benchSM{}
		h.sms = append(h.sms, sm)
		rep := replication.NewPassive(sm, members)
		var tr transport.Transport = h.network.Endpoint(id)
		if fault {
			ft := transport.NewFaultTransport(tr, seed+int64(len(h.faults)))
			h.faults = append(h.faults, ft)
			tr = ft
		}
		nd, err := core.NewNode(tr,
			core.Config{Self: id, Universe: members, Relation: replication.PassiveRelation()},
			rep.DeliverFunc())
		if err != nil {
			return nil, err
		}
		rep.Bind(nd)
		if batch {
			rep.EnableBatching(replication.BatchConfig{})
		}
		h.nodes = append(h.nodes, nd)
		h.reps = append(h.reps, rep)
	}
	for _, nd := range h.nodes {
		nd.Start()
	}
	for i, id := range members {
		gw := service.NewGateway(service.GatewayConfig{
			Self:     id,
			Replica:  h.reps[i],
			Read:     h.sms[i].read,
			Addrs:    addrs,
			Batching: batch,
		})
		l, err := h.network.ListenStream(id)
		if err != nil {
			return nil, err
		}
		gw.Serve(l)
		h.gws = append(h.gws, gw)
	}
	return h, nil
}

func (h *svcHarness) stop() {
	for _, gw := range h.gws {
		gw.Close()
	}
	for _, rep := range h.reps {
		rep.StopBatching()
	}
	stopAll(h.nodes, h.network)
}

func (h *svcHarness) dialer() func(addr string) (transport.StreamConn, error) {
	return func(addr string) (transport.StreamConn, error) {
		return h.network.DialStream(proc.ID(addr))
	}
}

func runService(sessions int, batch bool, runFor time.Duration) (svcRecord, error) {
	h, err := buildSvcHarness(int64(500+sessions), batch, false)
	if err != nil {
		return svcRecord{}, err
	}
	reps := h.reps
	defer h.stop()
	warm(h.network)

	dial := h.dialer()
	addrList := []string{"s0", "s1", "s2"}

	var (
		wg      sync.WaitGroup
		hist    = telemetry.NewHistogram()
		ops     atomic.Uint64
		stop    = make(chan struct{})
		downErr atomic.Value
	)
	clients := make([]*service.Client, sessions)
	for i := range clients {
		cl, err := service.NewClient(service.ClientConfig{
			Addrs: addrList,
			Dial:  dial,
		})
		if err != nil {
			return svcRecord{}, err
		}
		clients[i] = cl
		defer cl.Close()
	}

	start := time.Now()
	for _, cl := range clients {
		wg.Add(1)
		go func(cl *service.Client) {
			defer wg.Done()
			op := []byte("payload-64-bytes-xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx")
			for {
				select {
				case <-stop:
					return
				default:
				}
				t0 := time.Now()
				if _, err := cl.Call(op); err != nil {
					downErr.Store(err)
					return
				}
				d := time.Since(t0)
				ops.Add(1)
				hist.Observe(d)
			}
		}(cl)
	}
	time.Sleep(runFor)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)
	if err, ok := downErr.Load().(error); ok && err != nil {
		return svcRecord{}, err
	}
	bst := reps[0].BatchStats()

	return svcRecord{
		Experiment: "service",
		Batch:      batch,
		Sessions:   sessions,
		DurationS:  elapsed.Seconds(),
		Ops:        ops.Load(),
		OpsPerSec:  float64(ops.Load()) / elapsed.Seconds(),
		MeanUS:     float64(hist.Mean()) / float64(time.Microsecond),
		P50US:      float64(hist.Quantile(0.50)) / float64(time.Microsecond),
		P99US:      float64(hist.Quantile(0.99)) / float64(time.Microsecond),
		Batches:    bst.Batches,
		MaxBatch:   bst.MaxBatch,
	}, nil
}

// ---- E13: service read levels --------------------------------------------
//
// Client-observed read throughput of the three read consistency levels as
// the number of concurrent reader sessions grows. A background writer keeps
// the commit index moving so monotonic tokens are live. Local reads never
// leave the contacted gateway; monotonic reads pay a commit-index check (no
// broadcast — near-local once the replica is caught up); linearizable reads
// pay an ordered no-op barrier at the primary, COALESCED across concurrent
// readers — the barriers/max_coalesced columns show a 64-session burst
// costing far fewer than 64 broadcasts.

// svcReadRecord is the JSON shape of one read-sweep row.
type svcReadRecord struct {
	Experiment   string  `json:"experiment"`
	Level        string  `json:"level"`
	Sessions     int     `json:"sessions"`
	DurationS    float64 `json:"duration_s"`
	Reads        uint64  `json:"reads"`
	ReadsPerSec  float64 `json:"reads_per_s"`
	MeanUS       float64 `json:"mean_us"`
	P99US        float64 `json:"p99_us"`
	Barriers     uint64  `json:"barriers"`      // barrier no-ops broadcast (linearizable only)
	BarrierReads uint64  `json:"barrier_reads"` // reads served through them
	MaxCoalesced int     `json:"max_coalesced"` // largest reader group per barrier
}

func experimentServiceReads() error {
	fmt.Println("== E13 — service read levels: reads/s vs concurrent sessions ==")
	fmt.Println("   closed-loop readers + 1 background writer; barrier columns are linearizable-only")
	fmt.Printf("%-14s %-10s %10s %12s %10s %10s %10s %8s\n",
		"level", "sessions", "reads", "reads/s", "mean", "p99", "barriers", "maxcoal")

	const runFor = time.Second
	levels := []struct {
		name  string
		level service.ReadLevel
	}{
		{"local", service.ReadLocal},
		{"monotonic", service.ReadMonotonic},
		{"linearizable", service.ReadLinearizable},
	}
	for _, lv := range levels {
		for _, sessions := range []int{1, 4, 16, 64} {
			rec, err := runServiceReads(lv.name, lv.level, sessions, runFor)
			if err != nil {
				return err
			}
			fmt.Printf("%-14s %-10d %10d %12.0f %10v %10v %10d %8d\n",
				rec.Level, rec.Sessions, rec.Reads, rec.ReadsPerSec,
				time.Duration(rec.MeanUS*float64(time.Microsecond)).Round(time.Microsecond),
				time.Duration(rec.P99US*float64(time.Microsecond)).Round(time.Microsecond),
				rec.Barriers, rec.MaxCoalesced)
			line, err := json.Marshal(rec)
			if err != nil {
				return err
			}
			fmt.Println(string(line))
		}
	}
	return nil
}

func runServiceReads(name string, level service.ReadLevel, sessions int, runFor time.Duration) (svcReadRecord, error) {
	h, err := buildSvcHarness(int64(900+sessions), false, false)
	if err != nil {
		return svcReadRecord{}, err
	}
	defer h.stop()
	warm(h.network)

	dial := h.dialer()
	addrList := []string{"s0", "s1", "s2"}

	var (
		wg      sync.WaitGroup
		hist    = telemetry.NewHistogram()
		reads   atomic.Uint64
		stop    = make(chan struct{})
		downErr atomic.Value
	)

	// Background writer: keeps the ordered path busy and the commit index
	// advancing, as a live service would.
	writer, err := service.NewClient(service.ClientConfig{Addrs: addrList, Dial: dial})
	if err != nil {
		return svcReadRecord{}, err
	}
	defer writer.Close()
	wg.Add(1)
	go func() {
		defer wg.Done()
		op := []byte("background-write")
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := writer.Call(op); err != nil {
				downErr.Store(err)
				return
			}
		}
	}()

	clients := make([]*service.Client, sessions)
	for i := range clients {
		cl, err := service.NewClient(service.ClientConfig{
			Addrs:     addrList,
			Dial:      dial,
			ReadLevel: level,
		})
		if err != nil {
			return svcReadRecord{}, err
		}
		clients[i] = cl
		defer cl.Close()
	}
	// One write per reader session seeds its monotonic token.
	for _, cl := range clients {
		if _, err := cl.Call([]byte("seed")); err != nil {
			return svcReadRecord{}, err
		}
	}

	start := time.Now()
	for _, cl := range clients {
		wg.Add(1)
		go func(cl *service.Client) {
			defer wg.Done()
			op := []byte("read-payload")
			for {
				select {
				case <-stop:
					return
				default:
				}
				t0 := time.Now()
				if _, err := cl.Read(op); err != nil {
					downErr.Store(err)
					return
				}
				d := time.Since(t0)
				reads.Add(1)
				hist.Observe(d)
			}
		}(cl)
	}
	time.Sleep(runFor)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)
	if err, ok := downErr.Load().(error); ok && err != nil {
		return svcReadRecord{}, err
	}
	bst := h.reps[0].ReadBarrierStats()

	return svcReadRecord{
		Experiment:   "service_reads",
		Level:        name,
		Sessions:     sessions,
		DurationS:    elapsed.Seconds(),
		Reads:        reads.Load(),
		ReadsPerSec:  float64(reads.Load()) / elapsed.Seconds(),
		MeanUS:       float64(hist.Mean()) / float64(time.Microsecond),
		P99US:        float64(hist.Quantile(0.99)) / float64(time.Microsecond),
		Barriers:     bst.Broadcasts,
		BarrierReads: bst.Reads,
		MaxCoalesced: bst.MaxCoalesced,
	}, nil
}
