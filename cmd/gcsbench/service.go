package main

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	gcs "repro"
	"repro/internal/core"
	"repro/internal/proc"
	"repro/internal/replication"
	"repro/internal/service"
	"repro/internal/telemetry"
	"repro/internal/transport"
)

// ---- E12: service gateway ------------------------------------------------
//
// Client-observed throughput and latency of the networked service layer as
// the number of concurrent sessions grows, with and without group-commit
// batching. Every session is a closed loop (one outstanding write at a
// time). Unbatched, every write pays its own g-broadcast round trip, which
// saturates past a handful of sessions; batched, the primary coalesces all
// sessions' concurrent writes into one g-broadcast per commit window, so
// throughput keeps scaling while the single-session latency stays within
// the (zero by default) max batch delay. Emits one JSON record per row
// alongside the table.

// svcRecord is the JSON shape of one measurement row.
type svcRecord struct {
	Experiment string  `json:"experiment"`
	Batch      bool    `json:"batch"`
	Sessions   int     `json:"sessions"`
	DurationS  float64 `json:"duration_s"`
	Ops        uint64  `json:"ops"`
	OpsPerSec  float64 `json:"ops_per_s"`
	MeanUS     float64 `json:"mean_us"`
	P50US      float64 `json:"p50_us"`
	P99US      float64 `json:"p99_us"`
	Batches    uint64  `json:"batches"`   // broadcasts carrying the ops (0 unbatched)
	MaxBatch   int     `json:"max_batch"` // largest coalesced batch (0 unbatched)
	// HistOverflow counts latency samples beyond the histogram's last bucket
	// bound: nonzero means the p99 above is clamped (benchdiff flags it).
	HistOverflow uint64 `json:"hist_overflow,omitempty"`
}

// benchSM is a trivially cheap passive state machine.
type benchSM struct{ applied atomic.Uint64 }

func (b *benchSM) Execute(op []byte) ([]byte, []byte) { return op, op }
func (b *benchSM) ApplyUpdate([]byte)                 { b.applied.Add(1) }
func (b *benchSM) read(op []byte) []byte              { return op }

// snapshot/restore make benchSM snapshot-transferable so E19 followers can
// join via the sync protocol. The atomic store satisfies the Snapshotter
// atomic-swap contract (read never observes a torn counter).
func (b *benchSM) snapshot() []byte {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], b.applied.Load())
	return buf[:]
}

func (b *benchSM) restore(data []byte) {
	if len(data) == 8 {
		b.applied.Store(binary.BigEndian.Uint64(data))
	}
}

func experimentService() error {
	fmt.Println("== E12 — service gateway: client throughput vs concurrent sessions ==")
	fmt.Println("   closed-loop networked clients over memnet streams; writes only")
	fmt.Printf("%-6s %-10s %10s %12s %10s %10s %10s\n",
		"batch", "sessions", "ops", "ops/s", "mean", "p99", "batches")

	const runFor = time.Second
	for _, batch := range []bool{false, true} {
		for _, sessions := range []int{1, 4, 16, 64} {
			rec, err := runService(sessions, batch, runFor)
			if err != nil {
				return err
			}
			fmt.Printf("%-6v %-10d %10d %12.0f %10v %10v %10d\n",
				rec.Batch, rec.Sessions, rec.Ops, rec.OpsPerSec,
				time.Duration(rec.MeanUS*float64(time.Microsecond)).Round(time.Microsecond),
				time.Duration(rec.P99US*float64(time.Microsecond)).Round(time.Microsecond),
				rec.Batches)
			line, err := json.Marshal(rec)
			if err != nil {
				return err
			}
			fmt.Println(string(line))
		}
	}
	return nil
}

// svcHarness is one benchmark cluster: 3 nodes, a gateway each. When fault
// is set, every node's transport is wrapped in an (idle) FaultTransport —
// the pass-through-cost configuration E18 measures.
type svcHarness struct {
	network *transport.Network
	nodes   []*core.Node
	reps    []*replication.Passive
	sms     []*benchSM
	gws     []*service.Gateway
	faults  []*transport.FaultTransport

	// E19 read replicas: catch-up followers with a gateway each, addressed
	// f0..fN-1 (addFollowers).
	followers    []*gcs.Follower
	followerSMs  []*benchSM
	followerGWs  []*service.Gateway
	followerAddr []string
}

func buildSvcHarness(seed int64, batch, fault bool) (*svcHarness, error) {
	h := &svcHarness{network: newNet(seed)}
	members := ids(3, "s")
	addrs := make(map[proc.ID]string)
	for _, id := range members {
		addrs[id] = string(id)
	}
	for _, id := range members {
		sm := &benchSM{}
		h.sms = append(h.sms, sm)
		rep := replication.NewPassive(sm, members)
		var tr transport.Transport = h.network.Endpoint(id)
		if fault {
			ft := transport.NewFaultTransport(tr, seed+int64(len(h.faults)))
			h.faults = append(h.faults, ft)
			tr = ft
		}
		nd, err := core.NewNode(tr,
			core.Config{Self: id, Universe: members, Relation: replication.PassiveRelation()},
			rep.DeliverFunc())
		if err != nil {
			return nil, err
		}
		rep.Bind(nd)
		// Every member is a sync donor so E19 followers can join; idle for
		// the follower-less experiments.
		rep.SetSnapshotter(replication.Snapshotter{Snapshot: sm.snapshot, Restore: sm.restore})
		replication.ServeSync(nd.Endpoint(), rep, replication.SyncConfig{Join: nd.Join})
		if batch {
			rep.EnableBatching(replication.BatchConfig{})
		}
		h.nodes = append(h.nodes, nd)
		h.reps = append(h.reps, rep)
	}
	for _, nd := range h.nodes {
		nd.Start()
	}
	for i, id := range members {
		gw := service.NewGateway(service.GatewayConfig{
			Self:     id,
			Replica:  h.reps[i],
			Read:     h.sms[i].read,
			Addrs:    addrs,
			Batching: batch,
		})
		l, err := h.network.ListenStream(id)
		if err != nil {
			return nil, err
		}
		gw.Serve(l)
		h.gws = append(h.gws, gw)
	}
	return h, nil
}

// addFollowers attaches n catch-up read replicas ("f0".."fN-1"), each with
// its own gateway, and waits until every one has installed a snapshot and
// caught up to a donor — the point from which it serves reads at backup
// parity. Call after the members are started and warmed.
func (h *svcHarness) addFollowers(n int) error {
	members := ids(3, "s")
	addrs := make(map[proc.ID]string)
	for _, id := range members {
		addrs[id] = string(id)
	}
	for i := 0; i < n; i++ {
		fid := proc.ID(fmt.Sprintf("f%d", i))
		sm := &benchSM{}
		f, err := gcs.NewFollowerNode(h.network.Endpoint(fid), sm, gcs.FollowerConfig{
			Self:     fid,
			Donors:   members,
			Snapshot: sm.snapshot,
			Restore:  sm.restore,
			// A gentler pull cadence than the 5ms default: still far inside
			// the 250ms read bound, and N followers' pull RPCs must not crowd
			// the read path they exist to serve.
			PullInterval: 20 * time.Millisecond,
		})
		if err != nil {
			return err
		}
		h.followers = append(h.followers, f)
		h.followerSMs = append(h.followerSMs, sm)
		faddrs := make(map[proc.ID]string, len(addrs)+1)
		for k, v := range addrs {
			faddrs[k] = v
		}
		faddrs[fid] = string(fid)
		gw := service.NewGateway(service.GatewayConfig{
			Self:    fid,
			Replica: f.Replica,
			Read:    sm.read,
			Addrs:   faddrs,
		})
		l, err := h.network.ListenStream(fid)
		if err != nil {
			return err
		}
		gw.Serve(l)
		h.followerGWs = append(h.followerGWs, gw)
		h.followerAddr = append(h.followerAddr, string(fid))
	}
	for i, f := range h.followers {
		select {
		case <-f.Installed():
		case <-time.After(5 * time.Second):
			return fmt.Errorf("follower f%d never caught up", i)
		}
	}
	return nil
}

func (h *svcHarness) stop() {
	for _, gw := range h.followerGWs {
		gw.Close()
	}
	for _, gw := range h.gws {
		gw.Close()
	}
	for _, f := range h.followers {
		_ = f.Stop()
	}
	for _, rep := range h.reps {
		rep.StopBatching()
	}
	stopAll(h.nodes, h.network)
}

func (h *svcHarness) dialer() func(addr string) (transport.StreamConn, error) {
	return func(addr string) (transport.StreamConn, error) {
		return h.network.DialStream(proc.ID(addr))
	}
}

func runService(sessions int, batch bool, runFor time.Duration) (svcRecord, error) {
	h, err := buildSvcHarness(int64(500+sessions), batch, false)
	if err != nil {
		return svcRecord{}, err
	}
	reps := h.reps
	defer h.stop()
	warm(h.network)

	dial := h.dialer()
	addrList := []string{"s0", "s1", "s2"}

	var (
		wg      sync.WaitGroup
		hist    = telemetry.NewHistogram()
		ops     atomic.Uint64
		stop    = make(chan struct{})
		downErr atomic.Value
	)
	clients := make([]*service.Client, sessions)
	for i := range clients {
		cl, err := service.NewClient(service.ClientConfig{
			Addrs: addrList,
			Dial:  dial,
		})
		if err != nil {
			return svcRecord{}, err
		}
		clients[i] = cl
		defer cl.Close()
	}

	start := time.Now()
	for _, cl := range clients {
		wg.Add(1)
		go func(cl *service.Client) {
			defer wg.Done()
			op := benchPayload()
			for {
				select {
				case <-stop:
					return
				default:
				}
				t0 := time.Now()
				if _, err := cl.Call(op); err != nil {
					downErr.Store(err)
					return
				}
				d := time.Since(t0)
				ops.Add(1)
				hist.Observe(d)
			}
		}(cl)
	}
	time.Sleep(runFor)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)
	if err, ok := downErr.Load().(error); ok && err != nil {
		return svcRecord{}, err
	}
	bst := reps[0].BatchStats()

	return svcRecord{
		Experiment:   "service",
		Batch:        batch,
		Sessions:     sessions,
		DurationS:    elapsed.Seconds(),
		Ops:          ops.Load(),
		OpsPerSec:    float64(ops.Load()) / elapsed.Seconds(),
		MeanUS:       float64(hist.Mean()) / float64(time.Microsecond),
		P50US:        float64(hist.Quantile(0.50)) / float64(time.Microsecond),
		P99US:        float64(hist.Quantile(0.99)) / float64(time.Microsecond),
		Batches:      bst.Batches,
		MaxBatch:     bst.MaxBatch,
		HistOverflow: hist.Overflow(),
	}, nil
}

// ---- E13: service read levels --------------------------------------------
//
// Client-observed read throughput of the three read consistency levels as
// the number of concurrent reader sessions grows. A background writer keeps
// the commit index moving so monotonic tokens are live. Local reads never
// leave the contacted gateway; monotonic reads pay a commit-index check (no
// broadcast — near-local once the replica is caught up); linearizable reads
// pay an ordered no-op barrier at the primary, COALESCED across concurrent
// readers — the barriers/max_coalesced columns show a 64-session burst
// costing far fewer than 64 broadcasts.

// svcReadRecord is the JSON shape of one read-sweep row. The E19 fields are
// omitempty so the pre-lease E13 rows marshal byte-identically to their
// committed baselines.
type svcReadRecord struct {
	Experiment   string  `json:"experiment"`
	Level        string  `json:"level"`
	Sessions     int     `json:"sessions"`
	DurationS    float64 `json:"duration_s"`
	Reads        uint64  `json:"reads"`
	ReadsPerSec  float64 `json:"reads_per_s"`
	MeanUS       float64 `json:"mean_us"`
	P99US        float64 `json:"p99_us"`
	Barriers     uint64  `json:"barriers"`      // barrier no-ops broadcast (linearizable only)
	BarrierReads uint64  `json:"barrier_reads"` // reads served through them
	MaxCoalesced int     `json:"max_coalesced"` // largest reader group per barrier

	// E19 (leader lease + bounded staleness) columns.
	Followers      int    `json:"followers,omitempty"`       // read replicas serving bounded reads
	LeaseReads     uint64 `json:"lease_reads,omitempty"`     // linearizable reads served off the lease, no barrier
	LeaseFallbacks uint64 `json:"lease_fallbacks,omitempty"` // lease misses that fell back to a barrier
	TooStale       uint64 `json:"too_stale,omitempty"`       // bounded reads bounced for exceeding max-age
	HistOverflow   uint64 `json:"hist_overflow,omitempty"`   // clamped-tail sentinel (see svcRecord)
}

func experimentServiceReads() error {
	fmt.Println("== E13 — service read levels: reads/s vs concurrent sessions ==")
	fmt.Println("   closed-loop readers + 1 background writer; barrier columns are linearizable-only")
	fmt.Printf("%-14s %-10s %10s %12s %10s %10s %10s %8s\n",
		"level", "sessions", "reads", "reads/s", "mean", "p99", "barriers", "maxcoal")

	const runFor = time.Second
	levels := []struct {
		name  string
		level service.ReadLevel
	}{
		{"local", service.ReadLocal},
		{"monotonic", service.ReadMonotonic},
		{"linearizable", service.ReadLinearizable},
	}
	for _, lv := range levels {
		for _, sessions := range []int{1, 4, 16, 64} {
			rec, err := runReadSweep(svcReadSweepOpts{
				name: lv.name, level: lv.level, sessions: sessions, runFor: runFor,
			})
			if err != nil {
				return err
			}
			if err := printReadRow(rec); err != nil {
				return err
			}
		}
	}

	// ---- E19: retiring the barrier tax ----
	//
	// linearizable-lease: same linearizable clients, but the members hold a
	// replicated leadership lease, so the primary answers locally while it
	// holds — the barrier survives only as the handoff fallback.
	// bounded-staleness: sticky sessions pinned round-robin to follower
	// gateways issue ReadAtMost(250ms); each follower added is read capacity
	// the ordered core never sees, so the offered load scales with the
	// capacity (one session per follower). The lease stays armed here too:
	// its renewals stamp the applied state, so a stalled writer does not
	// strand the bound.
	fmt.Println()
	fmt.Println("== E19 — leader lease + bounded staleness: retiring the barrier tax ==")
	fmt.Println("   linearizable-lease: lease-holding primary, no per-read barrier")
	fmt.Println("   bounded-staleness: one sticky session per follower gateway, ReadAtMost(250ms)")
	for _, sessions := range []int{1, 4, 16, 64} {
		rec, err := runReadSweep(svcReadSweepOpts{
			name: "linearizable-lease", level: service.ReadLinearizable,
			sessions: sessions, runFor: runFor, lease: time.Second,
		})
		if err != nil {
			return err
		}
		if err := printReadRow(rec); err != nil {
			return err
		}
	}
	for _, followers := range []int{1, 2, 4} {
		rec, err := runReadSweep(svcReadSweepOpts{
			// 3× the window of the other rows: one closed-loop session per
			// follower makes these the noisiest rows on a small machine.
			name: "bounded-staleness", sessions: followers, runFor: 3 * runFor,
			lease: 200 * time.Millisecond, writePace: 5 * time.Millisecond,
			followers: followers, maxAge: 250 * time.Millisecond,
		})
		if err != nil {
			return err
		}
		if err := printReadRow(rec); err != nil {
			return err
		}
	}
	return nil
}

// printReadRow prints one sweep row as a table line plus its JSON record.
func printReadRow(rec svcReadRecord) error {
	name := rec.Level
	if rec.Followers > 0 {
		name = fmt.Sprintf("%s/f%d", rec.Level, rec.Followers)
	}
	fmt.Printf("%-14s %-10d %10d %12.0f %10v %10v %10d %8d\n",
		name, rec.Sessions, rec.Reads, rec.ReadsPerSec,
		time.Duration(rec.MeanUS*float64(time.Microsecond)).Round(time.Microsecond),
		time.Duration(rec.P99US*float64(time.Microsecond)).Round(time.Microsecond),
		rec.Barriers, rec.MaxCoalesced)
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	fmt.Println(string(line))
	return nil
}

// svcReadSweepOpts parameterises one read-sweep row (E13 and E19 share the
// runner). followers > 0 switches the readers to Sticky bounded-staleness
// sessions pinned round-robin to follower gateways; lease > 0 arms the
// leadership lease on every member with that TTL.
type svcReadSweepOpts struct {
	name      string
	level     service.ReadLevel
	sessions  int
	runFor    time.Duration
	lease     time.Duration
	followers int
	maxAge    time.Duration
	// writePace throttles the background writer to one write per pace
	// (0 = closed loop). The bounded rows pace it: writes exist only to
	// advance the freshness stamps there, and a closed-loop writer's
	// broadcast work would crowd the follower read path off the machine.
	writePace time.Duration
}

func runReadSweep(o svcReadSweepOpts) (svcReadRecord, error) {
	h, err := buildSvcHarness(int64(900+o.sessions+31*o.followers), false, false)
	if err != nil {
		return svcReadRecord{}, err
	}
	defer h.stop()
	warm(h.network)
	if o.followers > 0 {
		if err := h.addFollowers(o.followers); err != nil {
			return svcReadRecord{}, err
		}
	}
	if o.lease > 0 {
		for _, rep := range h.reps {
			rep.EnableLeaderLease(replication.LeaderLeaseConfig{TTL: o.lease})
			defer rep.DisableLeaderLease()
		}
	}

	dial := h.dialer()
	addrList := []string{"s0", "s1", "s2"}

	var (
		readers   sync.WaitGroup
		writerWG  sync.WaitGroup
		hist      = telemetry.NewHistogram()
		reads     atomic.Uint64
		stop      = make(chan struct{})
		stopWrite = make(chan struct{})
		downErr   atomic.Value
	)

	// Background writer: keeps the ordered path busy and the commit index
	// (and freshness stamps) advancing, as a live service would. It outlives
	// the readers: a bounded reader caught in a TOO_STALE retry when the
	// measurement window closes can only drain against a still-fresh group —
	// an idle group's state age grows without bound.
	writer, err := service.NewClient(service.ClientConfig{Addrs: addrList, Dial: dial})
	if err != nil {
		return svcReadRecord{}, err
	}
	defer writer.Close()
	// One synchronous write before anything reads: stamps the applied state
	// so bounded readers never start against a never-written group.
	if _, err := writer.Call([]byte("background-write")); err != nil {
		return svcReadRecord{}, err
	}
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		op := []byte("background-write")
		for {
			select {
			case <-stopWrite:
				return
			default:
			}
			if _, err := writer.Call(op); err != nil {
				downErr.Store(err)
				return
			}
			if o.writePace > 0 {
				select {
				case <-stopWrite:
					return
				case <-time.After(o.writePace):
				}
			}
		}
	}()

	if o.lease > 0 {
		// Measure the steady state, not the first grant's round trip: wait
		// until the lease has been delivered at the primary.
		deadline := time.Now().Add(2 * time.Second)
		for h.reps[0].LeaderLeaseStats().Grants == 0 {
			if time.Now().After(deadline) {
				return svcReadRecord{}, fmt.Errorf("leader lease never granted")
			}
			time.Sleep(time.Millisecond)
		}
	}

	clients := make([]*service.Client, o.sessions)
	for i := range clients {
		cfg := service.ClientConfig{Addrs: addrList, Dial: dial, ReadLevel: o.level}
		if o.followers > 0 {
			// Bounded readers are sticky follower sessions: each stays on its
			// gateway and retries TOO_STALE in place rather than chasing the
			// primary — the whole point is keeping reads off the core.
			cfg.Addrs = []string{h.followerAddr[i%o.followers]}
			cfg.Sticky = true
			cfg.ReadLevel = 0
		}
		cl, err := service.NewClient(cfg)
		if err != nil {
			return svcReadRecord{}, err
		}
		clients[i] = cl
		defer cl.Close()
	}
	if o.followers == 0 {
		// One write per reader session seeds its monotonic token. (Sticky
		// follower sessions cannot write and bounded reads carry no token.)
		for _, cl := range clients {
			if _, err := cl.Call([]byte("seed")); err != nil {
				return svcReadRecord{}, err
			}
		}
	}

	start := time.Now()
	for _, cl := range clients {
		readers.Add(1)
		go func(cl *service.Client) {
			defer readers.Done()
			op := []byte("read-payload")
			for {
				select {
				case <-stop:
					return
				default:
				}
				t0 := time.Now()
				var err error
				if o.followers > 0 {
					_, err = cl.ReadAtMost(op, o.maxAge)
				} else {
					_, err = cl.Read(op)
				}
				if err != nil {
					downErr.Store(err)
					return
				}
				d := time.Since(t0)
				reads.Add(1)
				hist.Observe(d)
			}
		}(cl)
	}
	time.Sleep(o.runFor)
	close(stop)
	readers.Wait()
	elapsed := time.Since(start)
	close(stopWrite)
	writerWG.Wait()
	if err, ok := downErr.Load().(error); ok && err != nil {
		return svcReadRecord{}, err
	}
	bst := h.reps[0].ReadBarrierStats()
	lst := h.reps[0].LeaderLeaseStats()
	var tooStale uint64
	for _, gw := range h.followerGWs {
		tooStale += gw.Stats().TooStale
	}

	return svcReadRecord{
		Experiment:     "service_reads",
		Level:          o.name,
		Sessions:       o.sessions,
		DurationS:      elapsed.Seconds(),
		Reads:          reads.Load(),
		ReadsPerSec:    float64(reads.Load()) / elapsed.Seconds(),
		MeanUS:         float64(hist.Mean()) / float64(time.Microsecond),
		P99US:          float64(hist.Quantile(0.99)) / float64(time.Microsecond),
		Barriers:       bst.Broadcasts,
		BarrierReads:   bst.Reads,
		MaxCoalesced:   bst.MaxCoalesced,
		Followers:      o.followers,
		LeaseReads:     lst.LeaseReads,
		LeaseFallbacks: lst.BarrierFallbacks,
		TooStale:       tooStale,
		HistOverflow:   hist.Overflow(),
	}, nil
}
