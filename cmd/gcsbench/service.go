package main

import (
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/proc"
	"repro/internal/replication"
	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/transport"
)

// ---- E12: service gateway ------------------------------------------------
//
// Client-observed throughput and latency of the networked service layer as
// the number of concurrent sessions grows, with and without group-commit
// batching. Every session is a closed loop (one outstanding write at a
// time). Unbatched, every write pays its own g-broadcast round trip, which
// saturates past a handful of sessions; batched, the primary coalesces all
// sessions' concurrent writes into one g-broadcast per commit window, so
// throughput keeps scaling while the single-session latency stays within
// the (zero by default) max batch delay. Emits one JSON record per row
// alongside the table.

// svcRecord is the JSON shape of one measurement row.
type svcRecord struct {
	Experiment string  `json:"experiment"`
	Batch      bool    `json:"batch"`
	Sessions   int     `json:"sessions"`
	DurationS  float64 `json:"duration_s"`
	Ops        uint64  `json:"ops"`
	OpsPerSec  float64 `json:"ops_per_s"`
	MeanUS     float64 `json:"mean_us"`
	P99US      float64 `json:"p99_us"`
	Batches    uint64  `json:"batches"`   // broadcasts carrying the ops (0 unbatched)
	MaxBatch   int     `json:"max_batch"` // largest coalesced batch (0 unbatched)
}

// benchSM is a trivially cheap passive state machine.
type benchSM struct{ applied atomic.Uint64 }

func (b *benchSM) Execute(op []byte) ([]byte, []byte) { return op, op }
func (b *benchSM) ApplyUpdate([]byte)                 { b.applied.Add(1) }
func (b *benchSM) read(op []byte) []byte              { return op }

func experimentService() error {
	fmt.Println("== E12 — service gateway: client throughput vs concurrent sessions ==")
	fmt.Println("   closed-loop networked clients over memnet streams; writes only")
	fmt.Printf("%-6s %-10s %10s %12s %10s %10s %10s\n",
		"batch", "sessions", "ops", "ops/s", "mean", "p99", "batches")

	const runFor = time.Second
	for _, batch := range []bool{false, true} {
		for _, sessions := range []int{1, 4, 16, 64} {
			rec, err := runService(sessions, batch, runFor)
			if err != nil {
				return err
			}
			fmt.Printf("%-6v %-10d %10d %12.0f %10v %10v %10d\n",
				rec.Batch, rec.Sessions, rec.Ops, rec.OpsPerSec,
				time.Duration(rec.MeanUS*float64(time.Microsecond)).Round(time.Microsecond),
				time.Duration(rec.P99US*float64(time.Microsecond)).Round(time.Microsecond),
				rec.Batches)
			line, err := json.Marshal(rec)
			if err != nil {
				return err
			}
			fmt.Println(string(line))
		}
	}
	return nil
}

func runService(sessions int, batch bool, runFor time.Duration) (svcRecord, error) {
	network := newNet(int64(500 + sessions))
	members := ids(3, "s")
	addrs := make(map[proc.ID]string)
	for _, id := range members {
		addrs[id] = string(id)
	}

	var (
		nodes []*core.Node
		reps  []*replication.Passive
		sms   []*benchSM
		gws   []*service.Gateway
	)
	for _, id := range members {
		sm := &benchSM{}
		sms = append(sms, sm)
		rep := replication.NewPassive(sm, members)
		nd, err := core.NewNode(network.Endpoint(id),
			core.Config{Self: id, Universe: members, Relation: replication.PassiveRelation()},
			rep.DeliverFunc())
		if err != nil {
			return svcRecord{}, err
		}
		rep.Bind(nd)
		if batch {
			rep.EnableBatching(replication.BatchConfig{})
		}
		nodes = append(nodes, nd)
		reps = append(reps, rep)
	}
	for _, nd := range nodes {
		nd.Start()
	}
	for i, id := range members {
		gw := service.NewGateway(service.GatewayConfig{
			Self:     id,
			Replica:  reps[i],
			Read:     sms[i].read,
			Addrs:    addrs,
			Batching: batch,
		})
		l, err := network.ListenStream(id)
		if err != nil {
			return svcRecord{}, err
		}
		gw.Serve(l)
		gws = append(gws, gw)
	}
	defer func() {
		for _, gw := range gws {
			gw.Close()
		}
		for _, rep := range reps {
			rep.StopBatching()
		}
		stopAll(nodes, network)
	}()
	warm(network)

	dial := func(addr string) (transport.StreamConn, error) {
		return network.DialStream(proc.ID(addr))
	}
	addrList := []string{"s0", "s1", "s2"}

	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		hist    = sim.NewHistogram()
		ops     atomic.Uint64
		stop    = make(chan struct{})
		downErr atomic.Value
	)
	clients := make([]*service.Client, sessions)
	for i := range clients {
		cl, err := service.NewClient(service.ClientConfig{
			Addrs: addrList,
			Dial:  dial,
		})
		if err != nil {
			return svcRecord{}, err
		}
		clients[i] = cl
		defer cl.Close()
	}

	start := time.Now()
	for _, cl := range clients {
		wg.Add(1)
		go func(cl *service.Client) {
			defer wg.Done()
			op := []byte("payload-64-bytes-xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx")
			for {
				select {
				case <-stop:
					return
				default:
				}
				t0 := time.Now()
				if _, err := cl.Call(op); err != nil {
					downErr.Store(err)
					return
				}
				d := time.Since(t0)
				ops.Add(1)
				mu.Lock()
				hist.Add(d)
				mu.Unlock()
			}
		}(cl)
	}
	time.Sleep(runFor)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)
	if err, ok := downErr.Load().(error); ok && err != nil {
		return svcRecord{}, err
	}
	bst := reps[0].BatchStats()

	return svcRecord{
		Experiment: "service",
		Batch:      batch,
		Sessions:   sessions,
		DurationS:  elapsed.Seconds(),
		Ops:        ops.Load(),
		OpsPerSec:  float64(ops.Load()) / elapsed.Seconds(),
		MeanUS:     float64(hist.Mean()) / float64(time.Microsecond),
		P99US:      float64(hist.Quantile(0.99)) / float64(time.Microsecond),
		Batches:    bst.Batches,
		MaxBatch:   bst.MaxBatch,
	}, nil
}
