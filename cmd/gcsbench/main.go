// Command gcsbench regenerates the experiment tables of EXPERIMENTS.md —
// one subcommand per experiment family:
//
//	gcsbench ordering        E1/E2/E4/E8: per-op latency and message cost of
//	                         all four ordering protocols vs group size
//	gcsbench bank            E9: Section 4.2 bank, conflict-ratio sweep,
//	                         generic vs all-ordered relation, thriftiness
//	gcsbench responsiveness  E10: Section 4.3, crash latency vs FD timeout,
//	                         and the cost of a false suspicion
//	gcsbench viewchange      E11: Section 4.4, throughput across a join with
//	                         one slow member: blocking flush vs boundaries
//	gcsbench fig8            E5: Figure 8 outcome distribution and failover
//	gcsbench service         E12: service gateway, client-observed
//	                         throughput/latency vs concurrent sessions
//	                         (also emits one JSON record per row)
//	gcsbench service-reads   E13: read consistency levels (local, monotonic,
//	                         linearizable) vs concurrent reader sessions,
//	                         with barrier-coalescing accounting (JSON rows)
//	gcsbench service-shards  E14: key space sharded across S parallel
//	                         replicated groups on one node set (group mux,
//	                         batching on) — aggregate write scaling (JSON)
//	gcsbench recovery        E15: follower recovery time vs state size —
//	                         snapshot state transfer + catch-up cursor
//	                         (JSON rows)
//	gcsbench overhead        E16: telemetry overhead — batched write path
//	                         with full instrumentation + scraping vs nil
//	                         instruments (JSON rows)
//	gcsbench durability      E17: durability tax — batched write path over
//	                         no engine / in-memory engine / fsynced
//	                         segmented WAL, one fsync per commit window
//	                         (JSON rows)
//	gcsbench partition       E18: partition availability — idle fault-layer
//	                         pass-through tax (paired) and the degraded-mode
//	                         timeline of an isolated primary: watchdog trip,
//	                         fail-fast latency, majority-side availability,
//	                         recovery after heal (JSON rows)
//	gcsbench all             everything above
//
// All experiments run on the in-memory simulated network with identical
// substrate parameters for both architectures.
package main

import (
	"fmt"
	"os"
)

func main() {
	cmd := "all"
	if len(os.Args) > 1 {
		cmd = os.Args[1]
	}
	if err := run(cmd); err != nil {
		fmt.Fprintln(os.Stderr, "gcsbench:", err)
		os.Exit(1)
	}
}

func run(cmd string) error {
	switch cmd {
	case "ordering":
		return experimentOrdering()
	case "bank":
		return experimentBank()
	case "responsiveness":
		return experimentResponsiveness()
	case "viewchange":
		return experimentViewChange()
	case "fig8":
		return experimentFig8()
	case "service":
		return experimentService()
	case "service-reads":
		return experimentServiceReads()
	case "service-shards":
		return experimentServiceShards()
	case "recovery":
		return experimentRecovery()
	case "overhead":
		return experimentOverhead()
	case "durability":
		return experimentDurability()
	case "partition":
		return experimentPartition()
	case "all":
		for _, f := range []func() error{
			experimentOrdering,
			experimentBank,
			experimentResponsiveness,
			experimentViewChange,
			experimentFig8,
			experimentService,
			experimentServiceReads,
			experimentServiceShards,
			experimentRecovery,
			experimentOverhead,
			experimentDurability,
			experimentPartition,
		} {
			if err := f(); err != nil {
				return err
			}
			fmt.Println()
		}
		return nil
	default:
		return fmt.Errorf("unknown experiment %q (want ordering|bank|responsiveness|viewchange|fig8|service|service-reads|service-shards|recovery|overhead|durability|partition|all)", cmd)
	}
}
