package main

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/service"
	"repro/internal/telemetry"
)

// ---- E16: telemetry overhead ---------------------------------------------
//
// Cost of full instrumentation on the hottest path we have: the batched
// service write path of E12. Each row pair runs the identical workload
// twice — once with no registry wired (every instrument pointer nil: one
// atomic load and branch per hook), once with the full wiring a production
// node gets from gcsnode -admin-listen (transport, protocol stack, replica,
// gateway, plus a scraper rendering the exposition every second — an
// aggressive Prometheus cadence — plus op tracing at the default 1/256
// sampling). The acceptance bar is ≤5% ops/s regression; hist_record_ns is
// the micro-cost of one histogram observation for context.
//
// The benchmark host is a single CPU shared with all three node stacks, so
// scrape-time work competes directly with the ordered path: an isolation
// matrix (hooks only / scrape only) showed the hot-path hooks alone cost
// ~1%, while rendering the full exposition at an unrealistic 10Hz cost
// ~10%. The realistic 1s cadence keeps scrape work in the noise.

// scrapeEvery is the exposition-render cadence during instrumented runs —
// one second, the aggressive end of real scrape intervals.
const scrapeEvery = time.Second

// overheadRecord is the JSON shape of one measurement row.
type overheadRecord struct {
	Experiment   string  `json:"experiment"`
	Instrumented bool    `json:"instrumented"`
	Sessions     int     `json:"sessions"`
	DurationS    float64 `json:"duration_s"`
	Ops          uint64  `json:"ops"`
	OpsPerSec    float64 `json:"ops_per_s"`
	MeanUS       float64 `json:"mean_us"`
	P99US        float64 `json:"p99_us"`
	OverheadPct  float64 `json:"overhead_pct"`   // vs the uninstrumented pair row (0 on baselines)
	HistRecordNS float64 `json:"hist_record_ns"` // micro-cost of one histogram Observe
}

func experimentOverhead() error {
	fmt.Println("== E16 — telemetry overhead: batched write path, instrumentation off vs on ==")
	fmt.Println("   full registry + tracer + 1s scraper vs nil instruments")
	histNS := measureHistRecordNS()
	fmt.Printf("   histogram record micro-cost: %.1f ns/op\n", histNS)
	fmt.Printf("%-8s %-10s %10s %12s %10s %10s %10s\n",
		"metrics", "sessions", "ops", "ops/s", "mean", "p99", "overhead")

	// A short closed-loop trial is ±10% noisy on the simulated network,
	// and the noise is time-correlated (host load drifts across the
	// experiment). Each trial therefore runs the off/on pair back to back —
	// ALTERNATING which of the two goes first, so drift within a pair
	// cannot systematically penalize one side — and the reported row is the
	// MEDIAN pair by overhead: paired differences cancel what best-of-N
	// over independent runs cannot.
	const runFor = 2 * time.Second
	const trials = 8
	for _, sessions := range []int{16, 64} {
		type pair struct{ off, on overheadRecord }
		pairs := make([]pair, 0, trials)
		for t := 0; t < trials; t++ {
			var off, on overheadRecord
			var err error
			run := func(instrumented bool) error {
				r, e := runOverhead(sessions, instrumented, runFor)
				if instrumented {
					on = r
				} else {
					off = r
				}
				return e
			}
			first := t%2 == 0
			if err = run(first); err != nil {
				return err
			}
			if err = run(!first); err != nil {
				return err
			}
			on.OverheadPct = (off.OpsPerSec - on.OpsPerSec) / off.OpsPerSec * 100
			pairs = append(pairs, pair{off, on})
		}
		sort.Slice(pairs, func(i, j int) bool {
			return pairs[i].on.OverheadPct < pairs[j].on.OverheadPct
		})
		median := pairs[len(pairs)/2]
		for _, rec := range []overheadRecord{median.off, median.on} {
			rec.HistRecordNS = histNS
			fmt.Printf("%-8v %-10d %10d %12.0f %10v %10v %9.1f%%\n",
				rec.Instrumented, rec.Sessions, rec.Ops, rec.OpsPerSec,
				time.Duration(rec.MeanUS*float64(time.Microsecond)).Round(time.Microsecond),
				time.Duration(rec.P99US*float64(time.Microsecond)).Round(time.Microsecond),
				rec.OverheadPct)
			line, err := json.Marshal(rec)
			if err != nil {
				return err
			}
			fmt.Println(string(line))
		}
	}
	return nil
}

// measureHistRecordNS times one histogram observation in isolation.
func measureHistRecordNS() float64 {
	h := telemetry.NewHistogram()
	const n = 1_000_000
	start := time.Now()
	for i := 0; i < n; i++ {
		h.Observe(time.Duration(i%1000) * time.Microsecond)
	}
	return float64(time.Since(start)) / n
}

// instrument wires the full observability stack onto a running harness —
// the same hookups gcsnode -admin-listen performs — and starts a scraper
// rendering the exposition at scrapeEvery. The returned stop function halts
// the scraper.
func (h *svcHarness) instrument(reg *telemetry.Registry) (stop func()) {
	tracer := telemetry.NewTracer(telemetry.TracerConfig{})
	h.network.RegisterMetrics(reg.Scope(telemetry.L("node", "net")))
	for i, nd := range h.nodes {
		scope := reg.Scope(telemetry.L("node", string(nd.Self())))
		nd.RegisterMetrics(scope)
		h.reps[i].RegisterMetrics(scope)
		h.reps[i].SetTracer(tracer)
		h.gws[i].RegisterMetrics(scope)
		h.gws[i].SetTracer(tracer)
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		ticker := time.NewTicker(scrapeEvery)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
				_ = reg.WritePrometheus(io.Discard)
			}
		}
	}()
	return func() { close(done); wg.Wait() }
}

// runOverhead is runService's workload (batched writes, closed-loop
// sessions) with the instrumentation toggle.
func runOverhead(sessions int, instrumented bool, runFor time.Duration) (overheadRecord, error) {
	h, err := buildSvcHarness(int64(1600+sessions), true, false)
	if err != nil {
		return overheadRecord{}, err
	}
	defer h.stop()
	if instrumented {
		stopScrape := h.instrument(telemetry.NewRegistry())
		defer stopScrape()
	}
	warm(h.network)

	dial := h.dialer()
	addrList := []string{"s0", "s1", "s2"}

	var (
		wg      sync.WaitGroup
		hist    = telemetry.NewHistogram()
		ops     atomic.Uint64
		stop    = make(chan struct{})
		downErr atomic.Value
	)
	clients := make([]*service.Client, sessions)
	for i := range clients {
		cl, err := service.NewClient(service.ClientConfig{
			Addrs: addrList,
			Dial:  dial,
		})
		if err != nil {
			return overheadRecord{}, err
		}
		clients[i] = cl
		defer cl.Close()
	}

	start := time.Now()
	for _, cl := range clients {
		wg.Add(1)
		go func(cl *service.Client) {
			defer wg.Done()
			op := benchPayload()
			for {
				select {
				case <-stop:
					return
				default:
				}
				t0 := time.Now()
				if _, err := cl.Call(op); err != nil {
					downErr.Store(err)
					return
				}
				ops.Add(1)
				hist.Observe(time.Since(t0))
			}
		}(cl)
	}
	time.Sleep(runFor)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)
	if err, ok := downErr.Load().(error); ok && err != nil {
		return overheadRecord{}, err
	}

	return overheadRecord{
		Experiment:   "overhead",
		Instrumented: instrumented,
		Sessions:     sessions,
		DurationS:    elapsed.Seconds(),
		Ops:          ops.Load(),
		OpsPerSec:    float64(ops.Load()) / elapsed.Seconds(),
		MeanUS:       float64(hist.Mean()) / float64(time.Microsecond),
		P99US:        float64(hist.Quantile(0.99)) / float64(time.Microsecond),
	}, nil
}
