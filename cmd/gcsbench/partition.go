package main

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/proc"
	"repro/internal/replication"
	"repro/internal/service"
	"repro/internal/telemetry"
)

// ---- E18: partition availability -----------------------------------------
//
// Two halves. First, the fault layer's pass-through tax: the batched write
// path of E12 with every node's transport wrapped in an IDLE FaultTransport
// (no rules installed) versus bare, measured E16-style as back-to-back
// alternating pairs with the median pair reported — the wrapper is one
// atomic load per send, so the acceptance bar is "no measurable
// regression" (the paired overhead sits inside the trial noise).
//
// Second, the availability timeline of a partitioned primary. The primary
// is split from its quorum while a client stays attached to its gateway
// (streams outlive the replica-tier partition). The quorum-progress
// watchdog must turn that primary's silence into fast retryable DEGRADED
// answers: the timeline records time-to-degraded (watchdog trip), the
// fresh-write fail-fast latency (≪ gateway request timeout), how many
// writes the MAJORITY side served while the split was up (failover keeps
// it available), and the time from heal to the stuck write's ack.

// partOverheadRecord is the JSON shape of one pass-through measurement row.
type partOverheadRecord struct {
	Experiment  string  `json:"experiment"`
	FaultLayer  bool    `json:"fault_layer"`
	Sessions    int     `json:"sessions"`
	DurationS   float64 `json:"duration_s"`
	Ops         uint64  `json:"ops"`
	OpsPerSec   float64 `json:"ops_per_s"`
	MeanUS      float64 `json:"mean_us"`
	P99US       float64 `json:"p99_us"`
	OverheadPct float64 `json:"overhead_pct"` // vs the bare pair row (0 on baselines)
}

// partTrialRecord is the JSON shape of one partition-timeline trial.
type partTrialRecord struct {
	Experiment      string  `json:"experiment"`
	Seed            int64   `json:"seed"`
	TripMS          float64 `json:"trip_ms"`           // partition → watchdog degraded
	FailFastMS      float64 `json:"fail_fast_ms"`      // fresh write → DEGRADED answer
	MajorityWrites  int     `json:"majority_writes"`   // acked on the quorum side mid-split
	RecoverMS       float64 `json:"recover_ms"`        // heal → stuck write acked
	DegradedAnswers uint64  `json:"degraded_answers"`  // client-side, partition signature
	GatewayDegraded uint64  `json:"gateway_degraded"`  // gateway-side DEGRADED answers
	WatchdogTrips   uint64  `json:"watchdog_trips"`    // across all replicas
	AckedOnMinority bool    `json:"acked_on_minority"` // must be false
}

func experimentPartition() error {
	fmt.Println("== E18 — partition availability: fault-layer tax + degraded-mode timeline ==")
	fmt.Println("   idle FaultTransport pass-through vs bare (paired, median), then isolated-primary trials")

	// Half 1: pass-through tax, E16-style pairing.
	fmt.Printf("%-6s %-10s %10s %12s %10s %10s %10s\n",
		"fault", "sessions", "ops", "ops/s", "mean", "p99", "overhead")
	const runFor = time.Second
	const trials = 6
	for _, sessions := range []int{16, 64} {
		type pair struct{ off, on partOverheadRecord }
		pairs := make([]pair, 0, trials)
		for t := 0; t < trials; t++ {
			var off, on partOverheadRecord
			run := func(fault bool) error {
				r, err := runPartitionOverhead(sessions, fault, runFor)
				if fault {
					on = r
				} else {
					off = r
				}
				return err
			}
			first := t%2 == 0
			if err := run(first); err != nil {
				return err
			}
			if err := run(!first); err != nil {
				return err
			}
			on.OverheadPct = (off.OpsPerSec - on.OpsPerSec) / off.OpsPerSec * 100
			pairs = append(pairs, pair{off, on})
		}
		sort.Slice(pairs, func(i, j int) bool {
			return pairs[i].on.OverheadPct < pairs[j].on.OverheadPct
		})
		median := pairs[len(pairs)/2]
		for _, rec := range []partOverheadRecord{median.off, median.on} {
			fmt.Printf("%-6v %-10d %10d %12.0f %10v %10v %9.1f%%\n",
				rec.FaultLayer, rec.Sessions, rec.Ops, rec.OpsPerSec,
				time.Duration(rec.MeanUS*float64(time.Microsecond)).Round(time.Microsecond),
				time.Duration(rec.P99US*float64(time.Microsecond)).Round(time.Microsecond),
				rec.OverheadPct)
			line, err := json.Marshal(rec)
			if err != nil {
				return err
			}
			fmt.Println(string(line))
		}
	}

	// Half 2: the degraded-mode availability timeline.
	fmt.Printf("%-6s %10s %12s %14s %12s %10s\n",
		"seed", "trip", "fail-fast", "majority-ok", "recover", "degraded")
	for _, seed := range []int64{41, 42, 43} {
		rec, err := runPartitionTrial(seed)
		if err != nil {
			return err
		}
		fmt.Printf("%-6d %10v %12v %14d %12v %10d\n",
			rec.Seed,
			time.Duration(rec.TripMS*float64(time.Millisecond)).Round(time.Millisecond),
			time.Duration(rec.FailFastMS*float64(time.Millisecond)).Round(100*time.Microsecond),
			rec.MajorityWrites,
			time.Duration(rec.RecoverMS*float64(time.Millisecond)).Round(time.Millisecond),
			rec.DegradedAnswers)
		line, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		fmt.Println(string(line))
	}
	return nil
}

// runPartitionOverhead is E12's batched closed-loop write workload with the
// fault-layer toggle and no other instrumentation.
func runPartitionOverhead(sessions int, fault bool, runFor time.Duration) (partOverheadRecord, error) {
	h, err := buildSvcHarness(int64(1800+sessions), true, fault)
	if err != nil {
		return partOverheadRecord{}, err
	}
	defer h.stop()
	warm(h.network)

	dial := h.dialer()
	addrList := []string{"s0", "s1", "s2"}

	var (
		wg      sync.WaitGroup
		hist    = telemetry.NewHistogram()
		ops     atomic.Uint64
		stop    = make(chan struct{})
		downErr atomic.Value
	)
	clients := make([]*service.Client, sessions)
	for i := range clients {
		cl, err := service.NewClient(service.ClientConfig{
			Addrs: addrList,
			Dial:  dial,
		})
		if err != nil {
			return partOverheadRecord{}, err
		}
		clients[i] = cl
		defer cl.Close()
	}

	start := time.Now()
	for _, cl := range clients {
		wg.Add(1)
		go func(cl *service.Client) {
			defer wg.Done()
			op := benchPayload()
			for {
				select {
				case <-stop:
					return
				default:
				}
				t0 := time.Now()
				if _, err := cl.Call(op); err != nil {
					downErr.Store(err)
					return
				}
				ops.Add(1)
				hist.Observe(time.Since(t0))
			}
		}(cl)
	}
	time.Sleep(runFor)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)
	if err, ok := downErr.Load().(error); ok && err != nil {
		return partOverheadRecord{}, err
	}

	return partOverheadRecord{
		Experiment: "partition_overhead",
		FaultLayer: fault,
		Sessions:   sessions,
		DurationS:  elapsed.Seconds(),
		Ops:        ops.Load(),
		OpsPerSec:  float64(ops.Load()) / elapsed.Seconds(),
		MeanUS:     float64(hist.Mean()) / float64(time.Microsecond),
		P99US:      float64(hist.Quantile(0.99)) / float64(time.Microsecond),
	}, nil
}

// runPartitionTrial measures one isolated-primary availability timeline.
func runPartitionTrial(seed int64) (partTrialRecord, error) {
	h, err := buildSvcHarness(seed, true, false)
	if err != nil {
		return partTrialRecord{}, err
	}
	defer h.stop()
	const (
		stallTimeout = 250 * time.Millisecond
		holdFor      = 1200 * time.Millisecond
	)
	for _, rep := range h.reps {
		rep.StartFailover(100 * time.Millisecond)
		rep.StartWatchdog(replication.WatchdogConfig{
			StallTimeout: stallTimeout,
			CheckEvery:   25 * time.Millisecond,
		})
	}
	defer func() {
		for _, rep := range h.reps {
			rep.StopWatchdog()
			rep.StopFailover()
		}
	}()
	warm(h.network)
	dial := h.dialer()

	// Locate the primary and split the membership around it.
	members := ids(3, "s")
	pi := -1
	for deadline := time.Now().Add(5 * time.Second); pi < 0; {
		for i, rep := range h.reps {
			if rep.Primary() == members[i] {
				pi = i
			}
		}
		if pi < 0 {
			if time.Now().After(deadline) {
				return partTrialRecord{}, fmt.Errorf("no primary elected")
			}
			time.Sleep(time.Millisecond)
		}
	}
	var minority, majority []proc.ID
	var majAddrs []string
	for i, id := range members {
		if i == pi {
			minority = append(minority, id)
		} else {
			majority = append(majority, id)
			majAddrs = append(majAddrs, string(id))
		}
	}

	// Doomed and fresh sessions stay attached to the minority primary's
	// gateway; the majority client uses the quorum side only.
	newPinned := func() (*service.Client, error) {
		return service.NewClient(service.ClientConfig{
			Addrs: []string{string(members[pi])}, Dial: dial,
			Sticky: true, OpTimeout: 30 * time.Second,
		})
	}
	doomedCl, err := newPinned()
	if err != nil {
		return partTrialRecord{}, err
	}
	defer doomedCl.Close()
	freshCl, err := newPinned()
	if err != nil {
		return partTrialRecord{}, err
	}
	defer freshCl.Close()
	majCl, err := service.NewClient(service.ClientConfig{
		Addrs: majAddrs, Dial: dial, OpTimeout: 10 * time.Second,
	})
	if err != nil {
		return partTrialRecord{}, err
	}
	defer majCl.Close()
	if _, err := doomedCl.Call([]byte("warmup")); err != nil {
		return partTrialRecord{}, fmt.Errorf("healthy write: %w", err)
	}

	h.network.Partition(minority, majority)
	t0 := time.Now()

	// The doomed write is admitted pre-trip, parks in flight, and supplies
	// the pending work the watchdog needs to observe the stall.
	doomed := make(chan error, 1)
	go func() {
		_, err := doomedCl.Call([]byte("doomed"))
		doomed <- err
	}()
	for !h.reps[pi].Degraded() {
		if time.Since(t0) > 10*time.Second {
			return partTrialRecord{}, fmt.Errorf("watchdog never tripped")
		}
		time.Sleep(time.Millisecond)
	}
	tripMS := float64(time.Since(t0)) / float64(time.Millisecond)

	// Fresh-session write: must bounce DEGRADED nearly instantly.
	f0 := time.Now()
	fresh := make(chan error, 1)
	go func() {
		_, err := freshCl.Call([]byte("fresh"))
		fresh <- err
	}()
	for freshCl.Stats().DegradedAnswers == 0 {
		if time.Since(f0) > 10*time.Second {
			return partTrialRecord{}, fmt.Errorf("no DEGRADED answer at the fresh session")
		}
		time.Sleep(500 * time.Microsecond)
	}
	failFastMS := float64(time.Since(f0)) / float64(time.Millisecond)

	// The majority side stays available mid-split (failover elects a new
	// primary there); count its acked writes until the hold elapses.
	majorityWrites := 0
	for time.Since(t0) < holdFor {
		if _, err := majCl.Call([]byte(fmt.Sprintf("maj-%d", majorityWrites))); err != nil {
			return partTrialRecord{}, fmt.Errorf("majority-side write during split: %w", err)
		}
		majorityWrites++
	}

	ackedOnMinority := false
	select {
	case <-doomed:
		ackedOnMinority = true // a quorumless ack — the violation E18 exists to rule out
	case <-fresh:
		ackedOnMinority = true
	default:
	}

	h.network.Heal()
	h0 := time.Now()
	for _, ch := range []chan error{doomed, fresh} {
		select {
		case err := <-ch:
			if err != nil {
				return partTrialRecord{}, fmt.Errorf("pinned write after heal: %w", err)
			}
		case <-time.After(30 * time.Second):
			return partTrialRecord{}, fmt.Errorf("pinned write never recovered after heal")
		}
	}
	recoverMS := float64(time.Since(h0)) / float64(time.Millisecond)

	var gwDegraded, trips uint64
	for _, gw := range h.gws {
		gwDegraded += gw.Stats().Degraded
	}
	for _, rep := range h.reps {
		trips += rep.DegradedTrips()
	}
	return partTrialRecord{
		Experiment:      "partition",
		Seed:            seed,
		TripMS:          tripMS,
		FailFastMS:      failFastMS,
		MajorityWrites:  majorityWrites,
		RecoverMS:       recoverMS,
		DegradedAnswers: freshCl.Stats().DegradedAnswers + doomedCl.Stats().DegradedAnswers,
		GatewayDegraded: gwDegraded,
		WatchdogTrips:   trips,
		AckedOnMinority: ackedOnMinority,
	}, nil
}
