package main

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/gbcast"
	"repro/internal/proc"
	"repro/internal/replication"
	"repro/internal/sim"
	"repro/internal/trad"
	"repro/internal/transport"
)

// Common network parameters: 50–200µs one-way latency, no loss.
func newNet(seed int64) *transport.Network {
	return transport.NewNetwork(
		transport.WithDelay(50*time.Microsecond, 200*time.Microsecond),
		transport.WithSeed(seed))
}

// benchPayload returns the standard 64-byte write payload every write-path
// experiment shares, so cross-experiment throughput numbers compare like for
// like. A fresh slice per call: sessions mutate nothing today, but a shared
// backing array would make that an action at a distance.
func benchPayload() []byte {
	return []byte("payload-64-bytes-xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx")
}

func ids(n int, prefix string) []proc.ID {
	out := make([]proc.ID, n)
	for i := range out {
		out[i] = proc.ID(fmt.Sprintf("%s%d", prefix, i))
	}
	return out
}

// newArchCluster builds n new-architecture nodes; deliveries go to deliver.
func newArchCluster(network *transport.Network, members []proc.ID, rel *gbcast.Relation,
	tweak func(*core.Config), deliver func(self proc.ID, d gbcast.Delivery)) ([]*core.Node, error) {
	var nodes []*core.Node
	for _, id := range members {
		self := id
		cfg := core.Config{Self: id, Universe: members, Relation: rel}
		if tweak != nil {
			tweak(&cfg)
		}
		var cb core.DeliverFunc
		if deliver != nil {
			cb = func(d gbcast.Delivery) { deliver(self, d) }
		}
		nd, err := core.NewNode(network.Endpoint(id), cfg, cb)
		if err != nil {
			return nil, err
		}
		nodes = append(nodes, nd)
	}
	for _, nd := range nodes {
		nd.Start()
	}
	return nodes, nil
}

func stopAll(nodes []*core.Node, network *transport.Network) {
	for _, nd := range nodes {
		nd.Stop()
	}
	network.Shutdown()
}

// tradCluster builds n traditional nodes.
func tradCluster(network *transport.Network, members []proc.ID, tweak func(*trad.Config),
	deliver func(self proc.ID, d trad.Delivery)) ([]*trad.Node, error) {
	var nodes []*trad.Node
	for _, id := range members {
		self := id
		cfg := trad.Config{Self: id, Universe: members, SuspicionTimeout: 2 * time.Second}
		if tweak != nil {
			tweak(&cfg)
		}
		var cb trad.DeliverFunc
		if deliver != nil {
			cb = func(d trad.Delivery) { deliver(self, d) }
		}
		nd, err := trad.NewNode(network.Endpoint(id), cfg, cb)
		if err != nil {
			return nil, err
		}
		nodes = append(nodes, nd)
	}
	for _, nd := range nodes {
		nd.Start()
	}
	return nodes, nil
}

func stopTrad(nodes []*trad.Node, network *transport.Network) {
	for _, nd := range nodes {
		nd.Stop()
	}
	network.Shutdown()
}

func allOrdered() *gbcast.Relation {
	return gbcast.NewRelationBuilder().Conflict(gbcast.ClassAbcast, gbcast.ClassAbcast).Build()
}

// ---- E1/E2/E4/E8: ordering protocols ------------------------------------

func experimentOrdering() error {
	fmt.Println("== E1/E2/E4/E8 — ordering protocols: latency and message cost ==")
	fmt.Println("   (paper Figs 1-4 vs Figs 6/9; Section 4.1 message accounting)")
	fmt.Printf("%-28s %3s %10s %10s %8s %9s\n", "system", "n", "mean", "p99", "msgs/dlv", "bytes/dlv")

	const ops = 150
	for _, n := range []int{3, 5, 7} {
		// New architecture, pure atomic broadcast semantics.
		if err := runNewArchOrdering("newarch abcast (CT)", n, allOrdered(), func(nd *core.Node, p sim.Payload) error {
			return nd.Abcast(p)
		}, ops); err != nil {
			return err
		}
		// New architecture, fast class (reliable+acks, no consensus).
		if err := runNewArchOrdering("newarch rbcast (fast)", n, nil, func(nd *core.Node, p sim.Payload) error {
			return nd.Rbcast(p)
		}, ops); err != nil {
			return err
		}
		// Traditional sequencer and ring.
		if err := runTradOrdering("trad sequencer (Isis)", n, trad.ModeSequencer, ops); err != nil {
			return err
		}
		if err := runTradOrdering("trad token ring (Totem)", n, trad.ModeTokenRing, ops); err != nil {
			return err
		}
	}
	return nil
}

func runNewArchOrdering(label string, n int, rel *gbcast.Relation, send func(*core.Node, sim.Payload) error, ops int) error {
	network := newNet(int64(n))
	members := ids(n, "p")
	hist := sim.NewHistogram()
	var delivered atomic.Uint64
	nodes, err := newArchCluster(network, members, rel, nil, func(self proc.ID, d gbcast.Delivery) {
		p, ok := d.Body.(sim.Payload)
		if !ok {
			return
		}
		if self == members[0] && d.Origin == members[0] {
			hist.Add(p.Age())
			delivered.Add(1)
		}
	})
	if err != nil {
		return err
	}
	defer stopAll(nodes, network)

	warm(network)
	network.ResetStats()
	for i := 0; i < ops; i++ {
		if err := send(nodes[0], sim.NewPayload(uint64(i+1), 64)); err != nil {
			return err
		}
		waitFor(func() bool { return delivered.Load() >= uint64(i+1) })
	}
	printOrderingRow(label, n, hist, network.Stats(), ops*n)
	return nil
}

func runTradOrdering(label string, n int, mode trad.Mode, ops int) error {
	network := newNet(int64(n))
	members := ids(n, "p")
	hist := sim.NewHistogram()
	var delivered atomic.Uint64
	sender := members[1] // not the sequencer / initial token holder
	nodes, err := tradCluster(network, members, func(c *trad.Config) { c.Mode = mode },
		func(self proc.ID, d trad.Delivery) {
			p, ok := d.Body.(sim.Payload)
			if !ok {
				return
			}
			if self == sender && d.Origin == sender {
				hist.Add(p.Age())
				delivered.Add(1)
			}
		})
	if err != nil {
		return err
	}
	defer stopTrad(nodes, network)

	warm(network)
	network.ResetStats()
	for i := 0; i < ops; i++ {
		if err := nodes[1].Broadcast(sim.NewPayload(uint64(i+1), 64)); err != nil {
			return err
		}
		waitFor(func() bool { return delivered.Load() >= uint64(i+1) })
	}
	printOrderingRow(label, n, hist, network.Stats(), ops*n)
	return nil
}

func printOrderingRow(label string, n int, hist *sim.Histogram, st transport.StatsSnapshot, deliveries int) {
	fmt.Printf("%-28s %3d %10v %10v %8.1f %9.0f\n",
		label, n,
		hist.Mean().Round(time.Microsecond),
		hist.Quantile(0.99).Round(time.Microsecond),
		float64(st.Sent)/float64(deliveries),
		float64(st.Bytes)/float64(deliveries))
}

// warm lets heartbeats settle so FD state is steady before measuring.
func warm(_ *transport.Network) { time.Sleep(30 * time.Millisecond) }

func waitFor(cond func() bool) {
	for !cond() {
		time.Sleep(50 * time.Microsecond)
	}
}

// ---- E9: Section 4.2 bank ------------------------------------------------

func experimentBank() error {
	fmt.Println("== E9 — Section 4.2 bank: generic broadcast vs atomic broadcast ==")
	fmt.Println("   deposits commute (fast class); withdrawals conflict (ordered)")
	fmt.Printf("%-14s %-12s %10s %10s %12s %14s\n",
		"withdraw%", "relation", "mean", "p99", "ops/s", "abcast/100op")

	const ops = 240
	for _, pct := range []int{0, 5, 10, 25, 50, 100} {
		for _, mode := range []string{"generic", "all-ordered"} {
			rel := replication.BankRelation()
			if mode == "all-ordered" {
				rel = replication.BankAllOrderedRelation()
			}
			if err := runBank(pct, mode, rel, ops); err != nil {
				return err
			}
		}
	}
	return nil
}

func runBank(pct int, mode string, rel *gbcast.Relation, ops int) error {
	network := newNet(int64(pct + 1))
	members := ids(3, "s")
	banks := make([]*replication.Bank, 3)
	for i := range banks {
		banks[i] = replication.NewBank()
	}
	i := 0
	nodes, err := newArchCluster(network, members, rel, nil, nil)
	if err != nil {
		return err
	}
	// Rebuild with bank delivery callbacks (cluster helper kept simple).
	stopAll(nodes, network)
	network = newNet(int64(pct + 1))
	nodes = nodes[:0]
	for idx, id := range members {
		bank := banks[idx]
		nd, err := core.NewNode(network.Endpoint(id),
			core.Config{Self: id, Universe: members, Relation: rel},
			bank.DeliverFunc())
		if err != nil {
			return err
		}
		nodes = append(nodes, nd)
	}
	for idx, bank := range banks {
		bank.Bind(nodes[idx])
	}
	for _, nd := range nodes {
		nd.Start()
	}
	defer stopAll(nodes, network)
	warm(network)

	hist := sim.NewHistogram()
	start := time.Now()
	for i = 0; i < ops; i++ {
		opStart := time.Now()
		if i%100 < pct {
			if err := banks[0].Withdraw("acct", 1); err != nil {
				return err
			}
		} else {
			if err := banks[0].Deposit("acct", 1); err != nil {
				return err
			}
		}
		want := uint64(i + 1)
		waitFor(func() bool {
			applied, rejected := banks[0].Applied()
			return applied+rejected >= want
		})
		hist.Add(time.Since(opStart))
	}
	elapsed := time.Since(start)
	st := nodes[0].BroadcastStats()
	abcastUses := st.OrderedDelivered + st.Boundaries // consensus-backed deliveries + CLOSE rounds
	fmt.Printf("%-14d %-12s %10v %10v %12.0f %14.1f\n",
		pct, mode,
		hist.Mean().Round(time.Microsecond),
		hist.Quantile(0.99).Round(time.Microsecond),
		float64(ops)/elapsed.Seconds(),
		float64(abcastUses)*100/float64(ops))
	return nil
}

// ---- E10: Section 4.3 responsiveness -------------------------------------

func experimentResponsiveness() error {
	fmt.Println("== E10 — Section 4.3 responsiveness: crash latency vs FD timeout ==")
	fmt.Println("   newarch: suspicion != exclusion (no view change, no state transfer)")
	fmt.Println("   trad:    suspicion == exclusion (kill + rejoin + state transfer)")
	fmt.Printf("%-10s %12s %18s %14s %18s\n",
		"timeout", "arch", "crash latency", "false-susp VCs", "false-susp cost")

	for _, timeout := range []time.Duration{30 * time.Millisecond, 60 * time.Millisecond, 120 * time.Millisecond, 240 * time.Millisecond} {
		if err := runNewArchResponsiveness(timeout); err != nil {
			return err
		}
		if err := runTradResponsiveness(timeout); err != nil {
			return err
		}
	}
	return nil
}

func runNewArchResponsiveness(timeout time.Duration) error {
	// Part 1: crash latency — crash the round-1 coordinator (p1), measure
	// the next abcast's latency: it must wait for the suspicion.
	network := newNet(100)
	members := ids(3, "p")
	var delivered atomic.Uint64
	hist := sim.NewHistogram()
	nodes, err := newArchCluster(network, members, allOrdered(), func(c *core.Config) {
		c.SuspicionTimeout = timeout
		c.ExclusionTimeout = time.Hour // monitoring never fires
	}, func(self proc.ID, d gbcast.Delivery) {
		if p, ok := d.Body.(sim.Payload); ok && self == "p0" && d.Origin == "p0" {
			hist.Add(p.Age())
			delivered.Add(1)
		}
	})
	if err != nil {
		return err
	}
	warm(network)
	for i := 0; i < 5; i++ { // steady state
		_ = nodes[0].Abcast(sim.NewPayload(uint64(i+1), 64))
		want := uint64(i + 1)
		waitFor(func() bool { return delivered.Load() >= want })
	}
	network.Crash("p1")
	crashStart := time.Now()
	_ = nodes[0].Abcast(sim.NewPayload(99, 64))
	waitFor(func() bool { return delivered.Load() >= 6 })
	crashLatency := time.Since(crashStart)
	viewSeqAfter := nodes[0].View().Seq
	stopAll(nodes, network)

	// Part 2: false suspicion — p1 is silent for 2x the timeout, then
	// heals. Cost: the extra latency while suspected; no view change.
	network2 := newNet(101)
	var delivered2 atomic.Uint64
	nodes2, err := newArchCluster(network2, members, allOrdered(), func(c *core.Config) {
		c.SuspicionTimeout = timeout
		c.ExclusionTimeout = time.Hour
	}, func(self proc.ID, d gbcast.Delivery) {
		if _, ok := d.Body.(sim.Payload); ok && self == "p0" {
			delivered2.Add(1)
		}
	})
	if err != nil {
		return err
	}
	defer stopAll(nodes2, network2)
	warm(network2)
	network2.CutLink("p0", "p1")
	network2.CutLink("p2", "p1")
	falseStart := time.Now()
	time.Sleep(2 * timeout)
	network2.HealLink("p0", "p1")
	network2.HealLink("p2", "p1")
	// Cost = time until a fresh broadcast flows normally again.
	_ = nodes2[0].Abcast(sim.NewPayload(1, 64))
	waitFor(func() bool { return delivered2.Load() >= 1 })
	falseCost := time.Since(falseStart) - 2*timeout
	if falseCost < 0 {
		falseCost = 0
	}
	vcs := nodes2[0].View().Seq
	fmt.Printf("%-10v %12s %18v %14d %18v\n",
		timeout, "newarch", crashLatency.Round(time.Millisecond), vcs+viewSeqAfter, falseCost.Round(time.Millisecond))
	return nil
}

func runTradResponsiveness(timeout time.Duration) error {
	// Part 1: crash the sequencer, measure next-delivery latency at p1.
	stateSize := 256 << 10 // 256 KiB of application state to transfer
	network := newNet(102)
	members := ids(3, "p")
	var delivered atomic.Uint64
	mkCfg := func(c *trad.Config) {
		c.SuspicionTimeout = timeout
		c.AutoRejoin = true
		c.Snapshot = func() []byte { return make([]byte, stateSize) }
		c.Restore = func([]byte) {}
	}
	nodes, err := tradCluster(network, members, mkCfg, func(self proc.ID, d trad.Delivery) {
		if _, ok := d.Body.(sim.Payload); ok && self == "p1" {
			delivered.Add(1)
		}
	})
	if err != nil {
		return err
	}
	warm(network)
	for i := 0; i < 5; i++ {
		_ = nodes[1].Broadcast(sim.NewPayload(uint64(i+1), 64))
		want := uint64(i + 1)
		waitFor(func() bool { return delivered.Load() >= want })
	}
	network.Crash("p0")
	crashStart := time.Now()
	_ = nodes[1].Broadcast(sim.NewPayload(99, 64))
	waitFor(func() bool { return delivered.Load() >= 6 })
	crashLatency := time.Since(crashStart)
	stopTrad(nodes, network)

	// Part 2: false suspicion of p2 — exclusion, kill, rejoin with state
	// transfer. Cost = outage until p2 is back in the view.
	network2 := newNet(103)
	var vcs atomic.Uint64
	nodes2, err := tradCluster(network2, members, mkCfg, nil)
	if err != nil {
		return err
	}
	defer stopTrad(nodes2, network2)
	nodes2[0].OnView(func(proc.View) { vcs.Add(1) })
	warm(network2)
	network2.CutLink("p0", "p2")
	network2.CutLink("p1", "p2")
	falseStart := time.Now()
	time.Sleep(2 * timeout)
	network2.HealLink("p0", "p2")
	network2.HealLink("p1", "p2")
	waitFor(func() bool { return nodes2[0].View().Contains("p2") })
	falseCost := time.Since(falseStart) - 2*timeout
	fmt.Printf("%-10v %12s %18v %14d %18v\n",
		timeout, "trad", crashLatency.Round(time.Millisecond), vcs.Load(), falseCost.Round(time.Millisecond))
	return nil
}

// ---- E11: Section 4.4 view-change blocking --------------------------------

func experimentViewChange() error {
	fmt.Println("== E11 — Section 4.4: throughput across a join (one slow member) ==")
	fmt.Println("   trad flush waits for ALL members and blocks senders")
	fmt.Println("   newarch boundary needs a majority and never blocks senders")

	// The offered load is kept well below CPU saturation (all eight stacks
	// share one process), so the trace shows protocol behaviour rather
	// than scheduler backlog.
	const (
		runFor     = 2 * time.Second
		joinAt     = 700 * time.Millisecond
		bucket     = 50 * time.Millisecond
		sendEvery  = 10 * time.Millisecond
		slowMin    = 25 * time.Millisecond
		slowMax    = 35 * time.Millisecond
		slowMember = proc.ID("p2")
	)

	makeSlow := func(network *transport.Network, members []proc.ID) {
		for _, m := range members {
			if m != slowMember {
				network.SetLinkDelay(m, slowMember, slowMin, slowMax)
			}
		}
	}

	// --- new architecture ---
	network := newNet(200)
	members := ids(4, "p")
	initial := members[:3]
	timeline := sim.NewTimeline(bucket)
	nodes, err := newArchCluster(network, members, nil, func(c *core.Config) {
		c.InitialView = initial
	}, func(self proc.ID, d gbcast.Delivery) {
		if _, ok := d.Body.(sim.Payload); ok && self == "p0" {
			timeline.Mark()
		}
	})
	if err != nil {
		return err
	}
	makeSlow(network, members)
	warm(network)
	newArchBuckets, err := driveJoinWorkload(timeline, runFor, joinAt, sendEvery,
		func(i uint64) error { return nodes[0].Rbcast(sim.NewPayload(i, 64)) },
		func() error { return nodes[0].Join("p3") })
	stopAll(nodes, network)
	if err != nil {
		return err
	}

	// --- traditional ---
	network2 := newNet(201)
	timeline2 := sim.NewTimeline(bucket)
	nodes2, err := tradCluster(network2, members, func(c *trad.Config) {
		c.InitialView = initial
		c.SuspicionTimeout = 5 * time.Second // avoid unrelated exclusions of the slow member
	}, func(self proc.ID, d trad.Delivery) {
		if _, ok := d.Body.(sim.Payload); ok && self == "p0" {
			timeline2.Mark()
		}
	})
	if err != nil {
		return err
	}
	makeSlow(network2, members)
	warm(network2)
	tradBuckets, err := driveJoinWorkload(timeline2, runFor, joinAt, sendEvery,
		func(i uint64) error { return nodes2[0].Broadcast(sim.NewPayload(i, 64)) },
		func() error { nodes2[3].Join(); return nil })
	stopTrad(nodes2, network2)
	if err != nil {
		return err
	}

	printTimeline("newarch (gbcast, same view delivery)", newArchBuckets, bucket, joinAt)
	printTimeline("trad    (flush, sending view delivery)", tradBuckets, bucket, joinAt)
	return nil
}

// driveJoinWorkload sends one message per tick, triggering join at joinAt.
func driveJoinWorkload(tl *sim.Timeline, runFor, joinAt, sendEvery time.Duration,
	send func(uint64) error, join func() error) ([]int, error) {
	var (
		wg      sync.WaitGroup
		sendErr error
	)
	start := time.Now()
	wg.Add(1)
	go func() {
		defer wg.Done()
		ticker := time.NewTicker(sendEvery)
		defer ticker.Stop()
		var i uint64
		for range ticker.C {
			if time.Since(start) > runFor {
				return
			}
			i++
			if err := send(i); err != nil && sendErr == nil {
				sendErr = err
			}
		}
	}()
	time.Sleep(joinAt)
	if err := join(); err != nil {
		return nil, err
	}
	wg.Wait()
	time.Sleep(100 * time.Millisecond) // drain in-flight deliveries
	if sendErr != nil {
		return nil, sendErr
	}
	return tl.Buckets(), nil
}

func printTimeline(label string, buckets []int, width, joinAt time.Duration) {
	joinIdx := int(joinAt / width)
	steady := median(buckets[2:joinIdx])
	minDuring, holes := 1<<30, 0
	hi := joinIdx + int(200*time.Millisecond/width)
	if hi > len(buckets) {
		hi = len(buckets)
	}
	for _, b := range buckets[joinIdx:hi] {
		if b < minDuring {
			minDuring = b
		}
		if b == 0 {
			holes++
		}
	}
	fmt.Printf("%s\n  steady=%d msgs/%v  min-during-join=%d  empty-buckets=%d\n  trace: ",
		label, steady, width, minDuring, holes)
	for _, b := range buckets {
		fmt.Printf("%d ", b)
	}
	fmt.Println()
}

func median(xs []int) int {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]int(nil), xs...)
	for i := range sorted {
		for j := i + 1; j < len(sorted); j++ {
			if sorted[j] < sorted[i] {
				sorted[i], sorted[j] = sorted[j], sorted[i]
			}
		}
	}
	return sorted[len(sorted)/2]
}

// ---- E5: Figure 8 ---------------------------------------------------------

type blindRegister struct {
	mu sync.Mutex
	v  []byte
}

func (r *blindRegister) Execute(op []byte) ([]byte, []byte) { return []byte("ok"), op }
func (r *blindRegister) ApplyUpdate(update []byte) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.v = append([]byte(nil), update...)
}

func experimentFig8() error {
	fmt.Println("== E5 — Figure 8: passive replication, update vs primary-change race ==")
	const rounds = 40
	case1, case2 := 0, 0
	for i := 0; i < rounds; i++ {
		applied, err := fig8Round(int64(i))
		if err != nil {
			return err
		}
		if applied {
			case1++
		} else {
			case2++
		}
	}
	fmt.Printf("outcomes over %d races: case1 (update before change) = %d, case2 (change first, update ignored) = %d\n",
		rounds, case1, case2)

	lat, err := fig8Failover()
	if err != nil {
		return err
	}
	fmt.Printf("failover (crash primary, FD timeout 60ms): first request served by new primary after %v\n",
		lat.Round(time.Millisecond))
	return nil
}

func fig8Round(seed int64) (bool, error) {
	network := newNet(300 + seed)
	members := ids(3, "s")
	reps := make([]*replication.Passive, 3)
	sms := make([]*blindRegister, 3)
	var nodes []*core.Node
	for i, id := range members {
		sms[i] = &blindRegister{}
		reps[i] = replication.NewPassive(sms[i], members)
		nd, err := core.NewNode(network.Endpoint(id),
			core.Config{Self: id, Universe: members, Relation: replication.PassiveRelation()},
			reps[i].DeliverFunc())
		if err != nil {
			return false, err
		}
		nodes = append(nodes, nd)
	}
	for i, r := range reps {
		r.Bind(nodes[i])
	}
	for _, nd := range nodes {
		nd.Start()
	}
	defer stopAll(nodes, network)

	// Race the two messages. The fast-path update normally beats the
	// consensus-backed primary-change, so the update side is staggered
	// across rounds to exercise both interleavings of Figure 8.
	var wg sync.WaitGroup
	var reqErr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		time.Sleep(time.Duration(seed%8) * time.Millisecond)
		_, reqErr = reps[0].Request([]byte("x"))
	}()
	go func() {
		defer wg.Done()
		_ = reps[1].RequestPrimaryChange("s0")
	}()
	wg.Wait()
	waitFor(func() bool { return reps[2].Epoch() >= 1 })
	// reqErr == nil: update applied everywhere before the change (case 1).
	// ErrDemoted / ErrNotPrimary: the change ordered first (case 2).
	return reqErr == nil, nil
}

func fig8Failover() (time.Duration, error) {
	network := newNet(400)
	members := ids(3, "s")
	reps := make([]*replication.Passive, 3)
	var nodes []*core.Node
	for i, id := range members {
		reps[i] = replication.NewPassive(&blindRegister{}, members)
		nd, err := core.NewNode(network.Endpoint(id),
			core.Config{Self: id, Universe: members, Relation: replication.PassiveRelation()},
			reps[i].DeliverFunc())
		if err != nil {
			return 0, err
		}
		nodes = append(nodes, nd)
	}
	for i, r := range reps {
		r.Bind(nodes[i])
		r.StartFailover(60 * time.Millisecond)
	}
	for _, nd := range nodes {
		nd.Start()
	}
	defer func() {
		for _, r := range reps {
			r.StopFailover()
		}
		stopAll(nodes, network)
	}()
	warm(network)
	if _, err := reps[0].Request([]byte("warm")); err != nil {
		return 0, err
	}
	network.Crash("s0")
	start := time.Now()
	for {
		if _, err := reps[1].Request([]byte("after")); err == nil {
			return time.Since(start), nil
		}
		time.Sleep(2 * time.Millisecond)
	}
}
