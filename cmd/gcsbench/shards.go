package main

import (
	"encoding/json"
	"fmt"
	mrand "math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/proc"
	"repro/internal/replication"
	"repro/internal/service"
	"repro/internal/telemetry"
	"repro/internal/transport"
)

// ---- E14: sharded service ------------------------------------------------
//
// Aggregate write throughput as the key space is sharded across S parallel
// replicated groups on the SAME 3-node set. Each shard is a complete
// passive-replication stack (own epoch, primary, batcher, commit index),
// every node's S stacks share one physical endpoint through the group mux,
// the per-shard replica lists are rotated so primaries spread across the
// nodes, and group-commit batching is ON everywhere.
//
// Two profiles, because what sharding buys depends on where the bottleneck
// is:
//
//   - "parity" replicates E12's substrate exactly (fast LAN-like delays,
//     default batch window, closed-loop sessions) with ONE shard: it shows
//     the sharded stack — group mux, shard router, per-shard sessions — at
//     S=1 matches the unsharded E12 numbers (no refactor regression).
//     On this benchmark's single-CPU runners the E12 configuration is
//     CPU-bound, and no amount of sharding speeds up a saturated CPU —
//     splitting the batcher only shrinks per-broadcast amortisation.
//
//   - "scaling" makes the ordered pipeline the bottleneck, which is the
//     regime sharding addresses: wide-area-ish delays (3–8 ms per hop) and
//     a bounded commit window (MaxOps 8 — think fsync'd log segments or
//     consensus over a WAN), with pipelined sessions supplying plenty of
//     outstanding writes. One group then commits at most window/round ops
//     per round no matter the offered load, while S groups run S rounds in
//     parallel: aggregate ops/s scales with S until the CPU (or the
//     outstanding-op supply) is exhausted.

// svcShardRecord is the JSON shape of one E14 row.
type svcShardRecord struct {
	Experiment string  `json:"experiment"`
	Profile    string  `json:"profile"` // "parity" (E12 substrate) or "scaling"
	Shards     int     `json:"shards"`
	Sessions   int     `json:"sessions"`
	Pipeline   int     `json:"pipeline"` // concurrent writes per session
	DurationS  float64 `json:"duration_s"`
	Ops        uint64  `json:"ops"`
	OpsPerSec  float64 `json:"ops_per_s"`
	MeanUS     float64 `json:"mean_us"`
	P50US      float64 `json:"p50_us"`
	P99US      float64 `json:"p99_us"`
	Batches    uint64  `json:"batches"`   // batches across all shard primaries
	MaxBatch   int     `json:"max_batch"` // largest coalesced batch anywhere
}

// shardProfile bundles one profile's substrate and load shape.
type shardProfile struct {
	name               string
	delayMin, delayMax time.Duration
	batch              replication.BatchConfig
	pipeline           int
}

var (
	// parityProfile is E12's exact substrate (newNet delays, default batch
	// window) and closed-loop sessions.
	parityProfile = shardProfile{
		name: "parity", delayMin: 50 * time.Microsecond, delayMax: 200 * time.Microsecond,
		pipeline: 1,
	}
	// scalingProfile is ordered-pipeline-bound: WAN-ish hop latency and a
	// small commit window cap each group's serial capacity while leaving
	// the CPU mostly idle — the capacity sharding multiplies.
	scalingProfile = shardProfile{
		name: "scaling", delayMin: 3 * time.Millisecond, delayMax: 8 * time.Millisecond,
		batch:    replication.BatchConfig{MaxOps: 8},
		pipeline: 8,
	}
)

func experimentServiceShards() error {
	fmt.Println("== E14 — sharded service: aggregate write ops/s vs shard count ==")
	fmt.Println("   S parallel replicated groups on one 3-node set (group mux, batching on);")
	fmt.Println("   parity = E12 substrate at S=1 (refactor regression check);")
	fmt.Println("   scaling = ordered-pipeline-bound substrate (3-8ms hops, 8-op commit window)")
	fmt.Printf("%-9s %-7s %-9s %-9s %10s %12s %10s %10s %10s %9s\n",
		"profile", "shards", "sessions", "pipeline", "ops", "ops/s", "mean", "p50", "p99", "batches")

	const runFor = time.Second
	type cell struct {
		prof   shardProfile
		shards int
	}
	var cells []cell
	for _, sh := range []int{1} {
		cells = append(cells, cell{parityProfile, sh})
	}
	for _, sh := range []int{1, 2, 4, 8} {
		cells = append(cells, cell{scalingProfile, sh})
	}
	for _, sessions := range []int{16, 64} {
		for _, c := range cells {
			rec, err := runServiceShards(c.prof, c.shards, sessions, runFor)
			if err != nil {
				return err
			}
			fmt.Printf("%-9s %-7d %-9d %-9d %10d %12.0f %10v %10v %10v %9d\n",
				rec.Profile, rec.Shards, rec.Sessions, rec.Pipeline, rec.Ops, rec.OpsPerSec,
				time.Duration(rec.MeanUS*float64(time.Microsecond)).Round(time.Microsecond),
				time.Duration(rec.P50US*float64(time.Microsecond)).Round(time.Microsecond),
				time.Duration(rec.P99US*float64(time.Microsecond)).Round(time.Microsecond),
				rec.Batches)
			line, err := json.Marshal(rec)
			if err != nil {
				return err
			}
			fmt.Println(string(line))
		}
	}
	return nil
}

// shardHarness is one benchmark cluster: 3 nodes × S shards, each node's
// shard stacks muxed over its single memnet endpoint, a sharded gateway per
// node.
type shardHarness struct {
	network *transport.Network
	muxes   []*transport.GroupMux
	nodes   []*core.Node
	reps    [][]*replication.Passive // [node][shard]
	gws     []*service.Gateway
}

func buildShardHarness(seed int64, shards int, prof shardProfile) (*shardHarness, error) {
	h := &shardHarness{network: transport.NewNetwork(
		transport.WithDelay(prof.delayMin, prof.delayMax),
		transport.WithSeed(seed))}
	members := ids(3, "s")
	addrs := make(map[proc.ID]string)
	for _, id := range members {
		addrs[id] = string(id)
	}
	for _, id := range members {
		mux := transport.NewGroupMux(h.network.Endpoint(id), shards)
		h.muxes = append(h.muxes, mux)
		var nodeReps []*replication.Passive
		var gwShards []service.Shard
		for k := 0; k < shards; k++ {
			sm := &benchSM{}
			view := append(append([]proc.ID{}, members[k%3:]...), members[:k%3]...)
			rep := replication.NewPassive(sm, view)
			nd, err := core.NewNode(mux.Group(k), core.Config{
				Self: id, Universe: members, Relation: replication.PassiveRelation(),
				// Many stacks share the machine: relax the failure-detection
				// cadence so heartbeat traffic (×S) stays in the noise. No
				// failover runs during the measurement.
				HeartbeatEvery: 20 * time.Millisecond,
				FDCheckEvery:   10 * time.Millisecond,
			}, rep.DeliverFunc())
			if err != nil {
				return nil, err
			}
			rep.Bind(nd)
			rep.EnableBatching(prof.batch)
			h.nodes = append(h.nodes, nd)
			nodeReps = append(nodeReps, rep)
			gwShards = append(gwShards, service.Shard{Replica: rep, Read: sm.read})
		}
		h.reps = append(h.reps, nodeReps)
		for _, nd := range h.nodes[len(h.nodes)-shards:] {
			nd.Start()
		}
		gw := service.NewGateway(service.GatewayConfig{
			Self:     id,
			Shards:   gwShards,
			Addrs:    addrs,
			Batching: true,
		})
		l, err := h.network.ListenStream(id)
		if err != nil {
			return nil, err
		}
		gw.Serve(l)
		h.gws = append(h.gws, gw)
	}
	return h, nil
}

func (h *shardHarness) stop() {
	for _, gw := range h.gws {
		gw.Close()
	}
	for _, nodeReps := range h.reps {
		for _, rep := range nodeReps {
			rep.StopBatching()
		}
	}
	for _, nd := range h.nodes {
		nd.Stop()
	}
	for _, mux := range h.muxes {
		mux.Close()
	}
	h.network.Shutdown()
}

// batchTotals sums the batch accounting across every shard's primary.
func (h *shardHarness) batchTotals() (batches uint64, maxBatch int) {
	for _, nodeReps := range h.reps {
		for _, rep := range nodeReps {
			bst := rep.BatchStats()
			batches += bst.Batches
			if bst.MaxBatch > maxBatch {
				maxBatch = bst.MaxBatch
			}
		}
	}
	return batches, maxBatch
}

func runServiceShards(prof shardProfile, shards, sessions int, runFor time.Duration) (svcShardRecord, error) {
	h, err := buildShardHarness(int64(1400+shards*100+sessions), shards, prof)
	if err != nil {
		return svcShardRecord{}, err
	}
	defer h.stop()
	warm(h.network)

	dial := func(addr string) (transport.StreamConn, error) {
		return h.network.DialStream(proc.ID(addr))
	}
	addrList := []string{"s0", "s1", "s2"}

	var (
		wg      sync.WaitGroup
		hist    = telemetry.NewHistogram()
		ops     atomic.Uint64
		stop    = make(chan struct{})
		downErr atomic.Value
	)
	clients := make([]*service.ShardedClient, sessions)
	for i := range clients {
		cl, err := service.NewShardedClient(service.ShardedClientConfig{
			ClientConfig: service.ClientConfig{Addrs: addrList, Dial: dial},
			Shards:       shards,
		})
		if err != nil {
			return svcShardRecord{}, err
		}
		clients[i] = cl
		defer cl.Close()
	}

	start := time.Now()
	for ci, cl := range clients {
		for w := 0; w < prof.pipeline; w++ {
			wg.Add(1)
			go func(cl *service.ShardedClient, seed uint64) {
				defer wg.Done()
				// Each worker walks its own deterministic key sequence; the
				// op embeds the key (whole-op hashing) padded to ~64 bytes.
				rng := mrand.New(mrand.NewPCG(seed, seed^0x9e3779b9))
				for {
					select {
					case <-stop:
						return
					default:
					}
					op := fmt.Sprintf("key-%04d-xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx",
						rng.IntN(1024))
					t0 := time.Now()
					if _, err := cl.Call([]byte(op)); err != nil {
						downErr.Store(err)
						return
					}
					d := time.Since(t0)
					ops.Add(1)
					hist.Observe(d)
				}
			}(cl, uint64(ci*64+w+1))
		}
	}
	time.Sleep(runFor)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)
	if err, ok := downErr.Load().(error); ok && err != nil {
		return svcShardRecord{}, err
	}
	batches, maxBatch := h.batchTotals()

	return svcShardRecord{
		Experiment: "service_shards",
		Profile:    prof.name,
		Shards:     shards,
		Sessions:   sessions,
		Pipeline:   prof.pipeline,
		DurationS:  elapsed.Seconds(),
		Ops:        ops.Load(),
		OpsPerSec:  float64(ops.Load()) / elapsed.Seconds(),
		MeanUS:     float64(hist.Mean()) / float64(time.Microsecond),
		P50US:      float64(hist.Quantile(0.50)) / float64(time.Microsecond),
		P99US:      float64(hist.Quantile(0.99)) / float64(time.Microsecond),
		Batches:    batches,
		MaxBatch:   maxBatch,
	}, nil
}
