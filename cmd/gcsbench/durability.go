package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/proc"
	"repro/internal/replication"
	"repro/internal/service"
	"repro/internal/storage"
	"repro/internal/telemetry"
)

// ---- E17: durability tax ---------------------------------------------------
//
// What durable-before-ack costs on the batched write path. Three engines run
// the identical closed-loop workload of E12 (batching on):
//
//   - none    the pre-storage baseline: no engine attached, acks are
//             volatile (whole-cluster power loss forgets them)
//   - memory  the in-process engine: the full storage code path (encode,
//             append, sync accounting) without a medium — isolates the
//             logging overhead from the fsync itself
//   - file    the segmented-WAL file engine: every commit window is fsynced
//             at each replica before its acks release
//
// The durability tax is the file row's ops/s against the none row of the
// same sessions count. Because the WAL sync rides the group-commit batcher —
// one record, one fsync per commit window regardless of the ops it carries —
// the tax amortizes as sessions grow: fsyncs_per_window ≈ 1 is the proof,
// printed per row, and the acceptance bar is file within 2× of the volatile
// baseline at 64 batched sessions. fsync_p99_us prices one sync on the
// runner's medium for context.

// durabilityRecord is the JSON shape of one measurement row.
type durabilityRecord struct {
	Experiment      string  `json:"experiment"`
	Engine          string  `json:"engine"` // none | memory | file
	Sessions        int     `json:"sessions"`
	DurationS       float64 `json:"duration_s"`
	Ops             uint64  `json:"ops"`
	OpsPerSec       float64 `json:"ops_per_s"`
	MeanUS          float64 `json:"mean_us"`
	P99US           float64 `json:"p99_us"`
	Batches         uint64  `json:"batches"`           // commit windows at the primary
	Fsyncs          uint64  `json:"fsyncs"`            // engine syncs at the primary
	FsyncsPerWindow float64 `json:"fsyncs_per_window"` // ≈1 when amortization works
	FsyncP99US      float64 `json:"fsync_p99_us"`      // one sync on this medium (file only)
	WALBytes        int64   `json:"wal_bytes"`         // primary WAL footprint at run end
	DurableTaxPct   float64 `json:"durable_tax_pct"`   // ops/s loss vs none at same sessions
}

func experimentDurability() error {
	fmt.Println("== E17 — durability tax: fsync-per-commit-window vs volatile acks ==")
	fmt.Println("   batched write path; engine=none is the volatile baseline, file fsyncs every window")
	fmt.Printf("%-8s %-10s %10s %12s %10s %10s %9s %11s %8s\n",
		"engine", "sessions", "ops", "ops/s", "mean", "p99", "fsyncs", "syncs/win", "tax")

	const runFor = 2 * time.Second
	const trials = 3
	for _, sessions := range []int{16, 64} {
		var baseline float64
		for _, engine := range []string{"none", "memory", "file"} {
			// Median-of-N by ops/s: one closed-loop trial is ±10% noisy on
			// the simulated network, and the tax division doubles the noise.
			recs := make([]durabilityRecord, 0, trials)
			for t := 0; t < trials; t++ {
				rec, err := runDurability(engine, sessions, runFor, int64(1700+16*sessions+t))
				if err != nil {
					return err
				}
				recs = append(recs, rec)
			}
			sort.Slice(recs, func(i, j int) bool { return recs[i].OpsPerSec < recs[j].OpsPerSec })
			rec := recs[len(recs)/2]
			if engine == "none" {
				baseline = rec.OpsPerSec
			} else if baseline > 0 {
				rec.DurableTaxPct = (baseline - rec.OpsPerSec) / baseline * 100
			}
			fmt.Printf("%-8s %-10d %10d %12.0f %10v %10v %9d %11.2f %7.1f%%\n",
				rec.Engine, rec.Sessions, rec.Ops, rec.OpsPerSec,
				time.Duration(rec.MeanUS*float64(time.Microsecond)).Round(time.Microsecond),
				time.Duration(rec.P99US*float64(time.Microsecond)).Round(time.Microsecond),
				rec.Fsyncs, rec.FsyncsPerWindow, rec.DurableTaxPct)
			line, err := json.Marshal(rec)
			if err != nil {
				return err
			}
			fmt.Println(string(line))
		}
	}
	return nil
}

// buildDurableHarness is buildSvcHarness (batching on) with a storage
// engine attached to every replica before its stack starts — the wiring a
// durable gcsnode performs. mkEngine nil builds the volatile baseline.
func buildDurableHarness(seed int64, mkEngine func(id string) (storage.Engine, error)) (*svcHarness, error) {
	h := &svcHarness{network: newNet(seed)}
	members := ids(3, "s")
	addrs := make(map[proc.ID]string)
	for _, id := range members {
		addrs[id] = string(id)
	}
	for _, id := range members {
		sm := &benchSM{}
		h.sms = append(h.sms, sm)
		rep := replication.NewPassive(sm, members)
		if mkEngine != nil {
			eng, err := mkEngine(string(id))
			if err != nil {
				return nil, err
			}
			rep.SetStorage(replication.StorageConfig{Engine: eng})
			if _, err := rep.ReplayStorage(); err != nil {
				return nil, err
			}
		}
		nd, err := core.NewNode(h.network.Endpoint(id),
			core.Config{Self: id, Universe: members, Relation: replication.PassiveRelation()},
			rep.DeliverFunc())
		if err != nil {
			return nil, err
		}
		rep.Bind(nd)
		rep.EnableBatching(replication.BatchConfig{})
		h.nodes = append(h.nodes, nd)
		h.reps = append(h.reps, rep)
	}
	for _, nd := range h.nodes {
		nd.Start()
	}
	for i, id := range members {
		gw := service.NewGateway(service.GatewayConfig{
			Self:     id,
			Replica:  h.reps[i],
			Read:     h.sms[i].read,
			Addrs:    addrs,
			Batching: true,
		})
		l, err := h.network.ListenStream(id)
		if err != nil {
			return nil, err
		}
		gw.Serve(l)
		h.gws = append(h.gws, gw)
	}
	return h, nil
}

func runDurability(engine string, sessions int, runFor time.Duration, seed int64) (durabilityRecord, error) {
	var mkEngine func(id string) (storage.Engine, error)
	switch engine {
	case "none":
	case "memory":
		mkEngine = func(string) (storage.Engine, error) { return storage.NewMemory(), nil }
	case "file":
		dir, err := os.MkdirTemp("", "gcsbench-durability-")
		if err != nil {
			return durabilityRecord{}, err
		}
		defer os.RemoveAll(dir)
		mkEngine = func(id string) (storage.Engine, error) {
			return storage.Open(filepath.Join(dir, id), storage.Config{})
		}
	default:
		return durabilityRecord{}, fmt.Errorf("unknown engine %q", engine)
	}
	h, err := buildDurableHarness(seed, mkEngine)
	if err != nil {
		return durabilityRecord{}, err
	}
	defer h.stop()
	// Every run carries the identical instrumentation (the fsync histogram
	// only fills on durable rows), so the engine dimension is the ONLY
	// difference between compared rows.
	reg := telemetry.NewRegistry()
	h.reps[0].RegisterMetrics(reg.Scope(telemetry.L("node", "s0")))
	fsyncHist := reg.Histogram("gcs_storage_fsync_seconds", "", telemetry.L("node", "s0"))
	warm(h.network)

	dial := h.dialer()
	addrList := []string{"s0", "s1", "s2"}

	var (
		wg      sync.WaitGroup
		hist    = telemetry.NewHistogram()
		ops     atomic.Uint64
		stop    = make(chan struct{})
		downErr atomic.Value
	)
	clients := make([]*service.Client, sessions)
	for i := range clients {
		cl, err := service.NewClient(service.ClientConfig{
			Addrs: addrList,
			Dial:  dial,
		})
		if err != nil {
			return durabilityRecord{}, err
		}
		clients[i] = cl
		defer cl.Close()
	}

	start := time.Now()
	for _, cl := range clients {
		wg.Add(1)
		go func(cl *service.Client) {
			defer wg.Done()
			op := benchPayload()
			for {
				select {
				case <-stop:
					return
				default:
				}
				t0 := time.Now()
				if _, err := cl.Call(op); err != nil {
					downErr.Store(err)
					return
				}
				ops.Add(1)
				hist.Observe(time.Since(t0))
			}
		}(cl)
	}
	time.Sleep(runFor)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)
	if err, ok := downErr.Load().(error); ok && err != nil {
		return durabilityRecord{}, err
	}

	bst := h.reps[0].BatchStats()
	sst := h.reps[0].StorageStats()
	rec := durabilityRecord{
		Experiment: "durability",
		Engine:     engine,
		Sessions:   sessions,
		DurationS:  elapsed.Seconds(),
		Ops:        ops.Load(),
		OpsPerSec:  float64(ops.Load()) / elapsed.Seconds(),
		MeanUS:     float64(hist.Mean()) / float64(time.Microsecond),
		P99US:      float64(hist.Quantile(0.99)) / float64(time.Microsecond),
		Batches:    bst.Batches,
		Fsyncs:     sst.Syncs,
		FsyncP99US: float64(fsyncHist.Quantile(0.99)) / float64(time.Microsecond),
		WALBytes:   sst.WALBytes,
	}
	if bst.Batches > 0 {
		rec.FsyncsPerWindow = float64(sst.Syncs) / float64(bst.Batches)
	}
	return rec, nil
}
