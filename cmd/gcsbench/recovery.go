package main

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/kvdemo"
	"repro/internal/proc"
	"repro/internal/rchannel"
	"repro/internal/replication"
	"repro/internal/transport"
)

// ---- E15: recovery time vs state size ------------------------------------
//
// How long does a fresh follower take to become a read-serving replica of a
// running group, as a function of the state it must install? A 3-node group
// is pre-loaded with N keys (64-byte values) through the batched write
// path; then a follower with empty state joins via the state-transfer
// protocol (snapshot + catch-up cursor) and we measure the wall time from
// its first pull to "installed": snapshot received, applied, and caught up
// to a donor's commit index. The snapshot's wire size is reported alongside
// so the bytes-vs-time relation is visible. Without state transfer the same
// join would replay the entire command history — N ordered commands plus
// their acks — instead of len(snapshot) bytes.

// recoveryRecord is the JSON shape of one E15 row.
type recoveryRecord struct {
	Experiment    string  `json:"experiment"`
	Keys          int     `json:"keys"`
	SnapshotBytes int     `json:"snapshot_bytes"`
	CommitIndex   uint64  `json:"commit_index"`
	InstallMS     float64 `json:"install_ms"` // first pull -> caught up
	PopulateS     float64 `json:"populate_s"` // load phase (context only)
}

func experimentRecovery() error {
	fmt.Println("== E15: follower recovery time vs state size ==")
	fmt.Println("3-node group + joining follower; snapshot state transfer + catch-up cursor")
	fmt.Println()
	fmt.Printf("%8s  %14s  %12s  %12s\n", "keys", "snapshot", "commitIdx", "install")
	for _, keys := range []int{256, 1024, 4096, 16384} {
		rec, err := runRecovery(keys)
		if err != nil {
			return err
		}
		fmt.Printf("%8d  %12dB  %12d  %9.1fms\n",
			rec.Keys, rec.SnapshotBytes, rec.CommitIndex, rec.InstallMS)
		line, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		fmt.Println(string(line))
	}
	fmt.Println()
	return nil
}

func runRecovery(keys int) (recoveryRecord, error) {
	network := transport.NewNetwork(transport.WithDelay(50*time.Microsecond, 200*time.Microsecond), transport.WithSeed(15))
	defer network.Shutdown()
	ids := proc.IDs("s1", "s2", "s3")

	var (
		reps   []*replication.Passive
		nodes  []*core.Node
		stores []*kvdemo.Store
	)
	for _, id := range ids {
		store := kvdemo.New()
		rep := replication.NewPassive(store, ids)
		rep.SetSnapshotter(replication.Snapshotter{Snapshot: store.Snapshot, Restore: store.Restore})
		node, err := core.NewNode(network.Endpoint(id), core.Config{
			Self: id, Universe: ids, Relation: replication.PassiveRelation(),
			Snapshot: rep.EncodeSnapshot,
			Restore:  func(b []byte) { _ = rep.InstallSnapshot(b) },
		}, rep.DeliverFunc())
		if err != nil {
			return recoveryRecord{}, err
		}
		rep.Bind(node)
		replication.ServeSync(node.Endpoint(), rep, replication.SyncConfig{Join: node.Join})
		reps = append(reps, rep)
		nodes = append(nodes, node)
		stores = append(stores, store)
	}
	for _, nd := range nodes {
		nd.Start()
	}
	defer func() {
		for _, nd := range nodes {
			nd.Stop()
		}
	}()

	// Load phase: N keys through the batched write path at the primary.
	primary := reps[0]
	primary.EnableBatching(replication.BatchConfig{})
	defer primary.StopBatching()
	value := strings.Repeat("v", 64)
	start := time.Now()
	const writers = 32
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < keys; i += writers {
				op := fmt.Sprintf("put key%06d %s", i, value)
				if _, err := primary.RequestSession(fmt.Sprintf("loader%d", w), uint64(i/writers+1), 0, []byte(op), 30*time.Second); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case err := <-errs:
		return recoveryRecord{}, err
	default:
	}
	populate := time.Since(start)
	snapshotBytes := len(primary.EncodeSnapshot())

	// Join phase: a fresh follower pulls the snapshot and catches up.
	store := kvdemo.New()
	follower := replication.NewFollower(store, "f1")
	follower.SetSnapshotter(replication.Snapshotter{Snapshot: store.Snapshot, Restore: store.Restore})
	ep := rchannel.New(network.Endpoint("f1"), rchannel.WithRTO(20*time.Millisecond), rchannel.WithIncarnation(1))
	syncer := replication.NewSyncer(follower, ep, replication.SyncerConfig{
		Donors:   ids,
		Interval: time.Millisecond,
		Timeout:  2 * time.Second,
		Announce: true,
	})
	joinStart := time.Now()
	ep.Start()
	syncer.Start()
	defer func() {
		syncer.Stop()
		ep.Stop()
	}()
	select {
	case <-syncer.Installed():
	case <-time.After(60 * time.Second):
		return recoveryRecord{}, fmt.Errorf("follower never installed (%d keys)", keys)
	}
	install := time.Since(joinStart)

	// Sanity: the follower really holds the state.
	if got := store.Get("key000000"); got != value {
		return recoveryRecord{}, fmt.Errorf("follower state wrong: key000000=%q", got)
	}

	return recoveryRecord{
		Experiment:    "recovery",
		Keys:          keys,
		SnapshotBytes: snapshotBytes,
		CommitIndex:   follower.CommitIndex(),
		InstallMS:     float64(install.Microseconds()) / 1e3,
		PopulateS:     populate.Seconds(),
	}, nil
}
