// Command gcsvet is the project's static-analysis multichecker: five
// analyzers encoding invariants the compiler cannot see — frame-pool
// ownership (framepool), EncodeTransient lifetime (transientretain), the
// lock-hold discipline (lockhold), telemetry naming (metricname), and
// deterministic time (wallclock). CI gates every commit on a clean run.
//
// Usage:
//
//	gcsvet [-run regexp] [-list] [packages...]
//
// With no packages, ./... is analyzed. Findings print one per line as
// file:line:col: analyzer: message; the exit status is 1 when any finding
// (or type error) survives //gcsvet:ignore filtering, 0 on a clean tree.
//
// Suppression: a finding is ignored by a comment on its line or the line
// above — //gcsvet:ignore [analyzers] -- reason. The reason is mandatory;
// see DESIGN.md "Static analysis & enforced invariants".
//
// Where other repos wire analyzers through `go vet -vettool=$(which
// gcsvet)`, this binary is invoked standalone (`gcsvet ./...`, as CI
// does): it does not speak vet's per-package .cfg protocol, because the
// lock-hold and blocking annotations travel as cross-package object facts
// inside one loader process — vet's one-package-at-a-time driver would
// need fact serialization for no gain over the standalone run, which
// covers the whole tree in a few seconds.
package main

import (
	"flag"
	"fmt"
	"os"
	"regexp"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/framepool"
	"repro/internal/analysis/lockhold"
	"repro/internal/analysis/metricname"
	"repro/internal/analysis/transientretain"
	"repro/internal/analysis/wallclock"
)

func analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		framepool.Analyzer,
		transientretain.Analyzer,
		lockhold.Analyzer,
		metricname.Analyzer,
		wallclock.Analyzer,
	}
}

func main() {
	runFilter := flag.String("run", "", "run only analyzers matching this regexp")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: gcsvet [-run regexp] [-list] [packages...]\n\nAnalyzers:\n")
		for _, a := range analyzers() {
			fmt.Fprintf(os.Stderr, "  %-16s %s\n", a.Name, strings.SplitN(a.Doc, "\n", 2)[0])
		}
	}
	flag.Parse()

	all := analyzers()
	if *list {
		for _, a := range all {
			fmt.Printf("%-16s %s\n", a.Name, strings.SplitN(a.Doc, "\n", 2)[0])
		}
		return
	}
	selected := all
	if *runFilter != "" {
		re, err := regexp.Compile(*runFilter)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gcsvet: bad -run regexp: %v\n", err)
			os.Exit(2)
		}
		selected = nil
		for _, a := range all {
			if re.MatchString(a.Name) {
				selected = append(selected, a)
			}
		}
		if len(selected) == 0 {
			fmt.Fprintf(os.Stderr, "gcsvet: -run %q matches no analyzer\n", *runFilter)
			os.Exit(2)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader := analysis.NewLoader("")
	pkgs, err := loader.Load(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gcsvet: %v\n", err)
		os.Exit(2)
	}
	res, err := analysis.Run(loader, pkgs, selected)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gcsvet: %v\n", err)
		os.Exit(2)
	}

	bad := false
	for _, err := range res.TypeErrors {
		bad = true
		fmt.Fprintf(os.Stderr, "gcsvet: typecheck: %v\n", err)
	}
	for _, d := range res.Diagnostics {
		bad = true
		p := loader.Fset.Position(d.Pos)
		fmt.Printf("%s:%d:%d: %s: %s\n", p.Filename, p.Line, p.Column, d.Analyzer, d.Message)
	}
	if bad {
		os.Exit(1)
	}
}
