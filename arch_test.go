package gcs_test

// Architecture tests: the paper's central contribution is a *dependency
// structure* (Figures 6, 7 and 9 versus Figures 1–5). These tests verify
// the claimed structure mechanically from the package import graph, so the
// reproduction cannot silently drift back to the traditional layering.

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// imports returns the set of repro-internal packages imported by the given
// internal package (test files excluded).
func imports(t *testing.T, pkg string) map[string]bool {
	t.Helper()
	dir := filepath.Join("internal", pkg)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read %s: %v", dir, err)
	}
	fset := token.NewFileSet()
	out := make(map[string]bool)
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ImportsOnly)
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if rest, ok := strings.CutPrefix(path, "repro/internal/"); ok {
				out[rest] = true
			}
		}
	}
	return out
}

// TestArchitectureDependencies asserts the new architecture's layering
// (Figures 6/7/9).
func TestArchitectureDependencies(t *testing.T) {
	mustNot := func(pkg, forbidden, why string) {
		t.Helper()
		if imports(t, pkg)[forbidden] {
			t.Errorf("internal/%s imports internal/%s — %s", pkg, forbidden, why)
		}
	}
	must := func(pkg, required, why string) {
		t.Helper()
		if !imports(t, pkg)[required] {
			t.Errorf("internal/%s does not import internal/%s — %s", pkg, required, why)
		}
	}

	// Section 3.1.1: "Atomic broadcast does not rely on group membership,
	// but group membership relies on atomic broadcast."
	mustNot("abcast", "membership", "atomic broadcast must not depend on membership (Section 3.1.1)")
	mustNot("consensus", "membership", "consensus must not depend on membership")
	mustNot("gbcast", "membership", "generic broadcast must not depend on membership")
	must("abcast", "consensus", "atomic broadcast is a sequence of consensus instances (Figure 6)")
	must("gbcast", "abcast", "thrifty generic broadcast falls back to atomic broadcast (Figure 7)")
	must("gbcast", "rbcast", "generic broadcast's fast path is reliable broadcast")

	// Section 3.1.3: "Group membership and failure detection are decoupled."
	mustNot("membership", "fd", "membership must not consume failure detection directly (Section 3.1.3)")
	mustNot("fd", "membership", "failure detection must not know about membership")

	// Section 3.3.2: the monitoring component owns the exclusion decision.
	must("monitoring", "membership", "monitoring calls the membership remove operation (Figure 9)")
	must("monitoring", "fd", "monitoring consumes long-timeout suspicions (Figure 9)")

	// The consensus component consumes suspicions directly (Figure 9),
	// unlike traditional stacks where the membership service plays failure
	// detector for everyone (Section 2.3.1).
	must("consensus", "fd", "consensus uses the failure detector directly (Figure 9)")

	// Membership is implemented over the broadcast abstraction; it needs no
	// consensus of its own (the ordering problem is solved exactly once,
	// Section 4.1).
	mustNot("membership", "consensus", "membership must not solve ordering again (Section 4.1)")
	mustNot("membership", "abcast", "membership talks to generic broadcast only (Figure 9)")
}

// TestTraditionalArchitectureShape asserts the baseline really has the
// traditional shape the paper criticises.
func TestTraditionalArchitectureShape(t *testing.T) {
	trad := imports(t, "trad")
	// Section 2.3.3: "except for Phoenix, no consensus component appears in
	// the implementations" — the baseline has none.
	if trad["consensus"] {
		t.Error("internal/trad imports internal/consensus; the traditional baseline must not use the consensus abstraction (Section 2.3.3)")
	}
	// Section 2.3.1: failure detection is coupled into the stack directly.
	if !trad["fd"] {
		t.Error("internal/trad must consume the failure detector directly (coupled FD+GM, Section 2.3.1)")
	}
	// It must not borrow the new architecture's components.
	for _, forbidden := range []string{"abcast", "gbcast", "membership", "monitoring"} {
		if trad[forbidden] {
			t.Errorf("internal/trad imports internal/%s; the baseline must be self-contained", forbidden)
		}
	}
}

// TestSubstrateIsShared asserts both stacks sit on the same substrate, so
// experiment E8–E11 differences come from architecture, not plumbing.
func TestSubstrateIsShared(t *testing.T) {
	for _, pkg := range []string{"trad", "consensus"} {
		deps := imports(t, pkg)
		for _, required := range []string{"rchannel", "fd"} {
			if !deps[required] {
				t.Errorf("internal/%s does not use shared substrate internal/%s", pkg, required)
			}
		}
	}
}
