package gcs_test

// Benchmarks, one per experiment row of EXPERIMENTS.md. The full parameter
// sweeps (conflict ratio, failure-detection timeouts, view-change
// timelines) live in cmd/gcsbench; these testing.B benchmarks capture the
// per-operation costs on a fast simulated network so `go test -bench=.`
// reproduces the paper's qualitative comparisons directly.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	gcs "repro"
	"repro/internal/core"
	"repro/internal/gbcast"
	"repro/internal/msg"
	"repro/internal/proc"
	"repro/internal/replication"
	"repro/internal/sim"
	"repro/internal/trad"
	"repro/internal/transport"
)

func benchNetOpts() []gcs.NetOption {
	return []gcs.NetOption{gcs.WithDelay(50*time.Microsecond, 200*time.Microsecond), gcs.WithSeed(1)}
}

// benchCluster builds an n-node new-architecture cluster whose node 0
// signals deliveries of its own payloads on the returned channel.
func benchCluster(b *testing.B, n int, rel *gcs.Relation) (*gcs.Cluster, chan uint64) {
	b.Helper()
	delivered := make(chan uint64, 1024)
	opts := []gcs.ClusterOption{
		gcs.WithNetOptions(benchNetOpts()...),
		gcs.WithDeliver(func(self gcs.ID, d gcs.Delivery) {
			if self == "p0" && d.Origin == "p0" {
				if p, ok := d.Body.(sim.Payload); ok {
					delivered <- p.Seq
				}
			}
		}),
	}
	if rel != nil {
		opts = append(opts, gcs.WithRelation(rel))
	}
	c, err := gcs.NewCluster(n, opts...)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(c.Stop)
	return c, delivered
}

func awaitSeq(b *testing.B, ch chan uint64, want uint64) {
	b.Helper()
	for {
		select {
		case got := <-ch:
			if got == want {
				return
			}
		case <-time.After(30 * time.Second):
			b.Fatalf("timeout waiting for seq %d", want)
		}
	}
}

// allOrderedRelation is the degenerate "everything conflicts" relation:
// generic broadcast behaves exactly as atomic broadcast, with no epoch
// boundary machinery.
func allOrderedRelation() *gcs.Relation {
	return gcs.NewRelationBuilder().Conflict(gcs.ClassAbcast, gcs.ClassAbcast).Build()
}

// E4 — new architecture atomic broadcast (Figures 6/9), per-op latency.
func BenchmarkNewArchAbcast(b *testing.B) {
	for _, n := range []int{3, 5, 7} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			c, delivered := benchCluster(b, n, allOrderedRelation())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				seq := uint64(i + 1)
				if err := c.Nodes[0].Abcast(sim.NewPayload(seq, 64)); err != nil {
					b.Fatal(err)
				}
				awaitSeq(b, delivered, seq)
			}
		})
	}
}

// E4b — atomic broadcast through a *mixed* relation (the default rbcast/
// abcast table): each ordered delivery additionally runs the epoch boundary
// that orders it against potential fast traffic. This is the price of
// same-view delivery, paid only by ordered messages.
func BenchmarkNewArchAbcastMixedRelation(b *testing.B) {
	c, delivered := benchCluster(b, 3, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seq := uint64(i + 1)
		if err := c.Nodes[0].Abcast(sim.NewPayload(seq, 64)); err != nil {
			b.Fatal(err)
		}
		awaitSeq(b, delivered, seq)
	}
}

// E9 (degenerate case) — generic broadcast fast path: reliable broadcast
// plus one ack round; no consensus, no sequencer.
func BenchmarkNewArchRbcastFast(b *testing.B) {
	for _, n := range []int{3, 5, 7} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			c, delivered := benchCluster(b, n, nil)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				seq := uint64(i + 1)
				if err := c.Nodes[0].Rbcast(sim.NewPayload(seq, 64)); err != nil {
					b.Fatal(err)
				}
				awaitSeq(b, delivered, seq)
			}
		})
	}
}

// tradBench builds a traditional cluster in the given mode.
func tradBench(b *testing.B, n int, mode trad.Mode) ([]*trad.Node, chan uint64) {
	b.Helper()
	network := transport.NewNetwork(
		transport.WithDelay(50*time.Microsecond, 200*time.Microsecond),
		transport.WithSeed(1))
	ids := make([]proc.ID, n)
	for i := range ids {
		ids[i] = proc.ID(fmt.Sprintf("p%d", i))
	}
	delivered := make(chan uint64, 1024)
	var nodes []*trad.Node
	for _, id := range ids {
		self := id
		nd, err := trad.NewNode(network.Endpoint(id), trad.Config{
			Self: id, Universe: ids, Mode: mode,
			SuspicionTimeout: 2 * time.Second, // no failures in this bench
		}, func(d trad.Delivery) {
			// Collect at p1, a plain member (p0 is the sequencer/initial
			// token holder; measuring there would hide the ordering hop).
			if self == "p1" && d.Origin == "p1" {
				if p, ok := d.Body.(sim.Payload); ok {
					delivered <- p.Seq
				}
			}
		})
		if err != nil {
			b.Fatal(err)
		}
		nodes = append(nodes, nd)
	}
	for _, nd := range nodes {
		nd.Start()
	}
	b.Cleanup(func() {
		for _, nd := range nodes {
			nd.Stop()
		}
		network.Shutdown()
	})
	return nodes, delivered
}

// E1 — traditional fixed-sequencer atomic broadcast (Isis/Phoenix).
func BenchmarkTradSequencer(b *testing.B) {
	for _, n := range []int{3, 5, 7} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			nodes, delivered := tradBench(b, n, trad.ModeSequencer)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				seq := uint64(i + 1)
				if err := nodes[1].Broadcast(sim.NewPayload(seq, 64)); err != nil {
					b.Fatal(err)
				}
				awaitSeq(b, delivered, seq)
			}
		})
	}
}

// E2 — traditional token-ring atomic broadcast (RMP/Totem).
func BenchmarkTradTokenRing(b *testing.B) {
	for _, n := range []int{3, 5} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			nodes, delivered := tradBench(b, n, trad.ModeTokenRing)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				seq := uint64(i + 1)
				if err := nodes[1].Broadcast(sim.NewPayload(seq, 64)); err != nil {
					b.Fatal(err)
				}
				awaitSeq(b, delivered, seq)
			}
		})
	}
}

// bankBench wires three bank replicas under the given conflict relation.
func bankBench(b *testing.B, rel *gbcast.Relation) ([]*replication.Bank, []*core.Node) {
	b.Helper()
	network := transport.NewNetwork(
		transport.WithDelay(50*time.Microsecond, 200*time.Microsecond),
		transport.WithSeed(1))
	ids := proc.IDs("s1", "s2", "s3")
	banks := make([]*replication.Bank, 3)
	var nodes []*core.Node
	for i, id := range ids {
		banks[i] = replication.NewBank()
		nd, err := core.NewNode(network.Endpoint(id), core.Config{
			Self: id, Universe: ids, Relation: rel,
		}, banks[i].DeliverFunc())
		if err != nil {
			b.Fatal(err)
		}
		nodes = append(nodes, nd)
	}
	for i, bank := range banks {
		bank.Bind(nodes[i])
	}
	for _, nd := range nodes {
		nd.Start()
	}
	b.Cleanup(func() {
		for _, nd := range nodes {
			nd.Stop()
		}
		network.Shutdown()
	})
	return banks, nodes
}

func runBankDeposits(b *testing.B, rel *gbcast.Relation) {
	banks, _ := bankBench(b, rel)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := banks[0].Deposit("acct", 1); err != nil {
			b.Fatal(err)
		}
		// Wait for local application (deposit visible at the submitter).
		for banks[0].Balance("acct") < int64(i+1) {
			time.Sleep(20 * time.Microsecond)
		}
	}
}

// E9 — Section 4.2 headline: identical deposit workload, generic broadcast
// relation (commutative deposits: fast path) ...
func BenchmarkBankDepositGeneric(b *testing.B) {
	runBankDeposits(b, replication.BankRelation())
}

// ... versus the traditional-equivalent relation where deposits conflict
// with everything and must pay for atomic broadcast.
func BenchmarkBankDepositAllOrdered(b *testing.B) {
	runBankDeposits(b, replication.BankAllOrderedRelation())
}

// E9 mixed workload: 10% withdrawals among deposits under the generic
// relation — the thrifty implementation invokes atomic broadcast only for
// the conflicting minority.
func BenchmarkBankMixed10pct(b *testing.B) {
	banks, _ := bankBench(b, replication.BankRelation())
	var deposited int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%10 == 9 {
			if err := banks[0].Withdraw("acct", 1); err != nil {
				b.Fatal(err)
			}
		} else {
			if err := banks[0].Deposit("acct", 1); err != nil {
				b.Fatal(err)
			}
			deposited++
			for banks[0].Balance("acct") < deposited-int64(i/10)-1 {
				time.Sleep(20 * time.Microsecond)
			}
		}
	}
}

// E5 — Figure 8 primary change: one full failover round trip (the ordered
// class forces an epoch boundary through atomic broadcast).
func BenchmarkFig8PrimaryChange(b *testing.B) {
	network := transport.NewNetwork(
		transport.WithDelay(50*time.Microsecond, 200*time.Microsecond),
		transport.WithSeed(1))
	ids := proc.IDs("s1", "s2", "s3")
	reps := make([]*replication.Passive, 3)
	type noopSM struct{}
	var nodes []*core.Node
	for i, id := range ids {
		reps[i] = replication.NewPassive(noopPassive{}, ids)
		nd, err := core.NewNode(network.Endpoint(id), core.Config{
			Self: id, Universe: ids, Relation: replication.PassiveRelation(),
		}, reps[i].DeliverFunc())
		if err != nil {
			b.Fatal(err)
		}
		nodes = append(nodes, nd)
	}
	_ = noopSM{}
	for i, r := range reps {
		r.Bind(nodes[i])
	}
	for _, nd := range nodes {
		nd.Start()
	}
	b.Cleanup(func() {
		for _, nd := range nodes {
			nd.Stop()
		}
		network.Shutdown()
	})

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		old := reps[1].Primary()
		if err := reps[1].RequestPrimaryChange(old); err != nil {
			b.Fatal(err)
		}
		want := uint64(i + 1)
		for reps[1].Epoch() < want {
			time.Sleep(20 * time.Microsecond)
		}
	}
}

type noopPassive struct{}

func (noopPassive) Execute(op []byte) ([]byte, []byte) { return op, op }
func (noopPassive) ApplyUpdate([]byte)                 {}

// Group-commit write path: the same sessioned write workload against a
// 3-replica passive group, with and without batching. The batched variant
// coalesces the concurrent writes of RunParallel's workers into one
// g-broadcast per commit window.
func runSessionWrites(b *testing.B, batch bool) {
	b.Helper()
	network := transport.NewNetwork(
		transport.WithDelay(50*time.Microsecond, 200*time.Microsecond),
		transport.WithSeed(1))
	ids := proc.IDs("s1", "s2", "s3")
	reps := make([]*replication.Passive, 3)
	var nodes []*core.Node
	for i, id := range ids {
		reps[i] = replication.NewPassive(noopPassive{}, ids)
		nd, err := core.NewNode(network.Endpoint(id), core.Config{
			Self: id, Universe: ids, Relation: replication.PassiveRelation(),
		}, reps[i].DeliverFunc())
		if err != nil {
			b.Fatal(err)
		}
		nodes = append(nodes, nd)
	}
	for i, r := range reps {
		r.Bind(nodes[i])
		if batch {
			r.EnableBatching(replication.BatchConfig{})
		}
	}
	for _, nd := range nodes {
		nd.Start()
	}
	b.Cleanup(func() {
		for i, nd := range nodes {
			reps[i].StopBatching()
			nd.Stop()
		}
		network.Shutdown()
	})

	payload := []byte("payload-64-bytes-xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx")
	var session atomic.Uint64
	b.SetParallelism(4)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		sess := fmt.Sprintf("bench-%d", session.Add(1))
		var seq uint64
		for pb.Next() {
			seq++
			if _, err := reps[0].RequestSession(sess, seq, seq-1, payload, 30*time.Second); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// E12 microbenchmarks — per-op cost of the ordered write path, one
// g-broadcast per op ...
func BenchmarkSessionWriteUnbatched(b *testing.B) { runSessionWrites(b, false) }

// ... versus the group-commit batcher coalescing concurrent ops.
func BenchmarkSessionWriteBatched(b *testing.B) { runSessionWrites(b, true) }

// Substrate microbenchmarks.

// BenchmarkMsgCodec measures the pooled gob codec hot path that every
// message of every layer pays — batching multiplies payload sizes, so both
// small and batch-sized payloads are covered.
func BenchmarkMsgCodec(b *testing.B) {
	for _, size := range []int{64, 1024, 16384} {
		p := sim.NewPayload(1, size)
		pre, err := msg.Encode(p)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("encode/size=%d", size), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := msg.Encode(p); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("encodeTransient/size=%d", size), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, release, err := msg.EncodeTransient(p)
				if err != nil {
					b.Fatal(err)
				}
				release()
			}
		})
		b.Run(fmt.Sprintf("decode/size=%d", size), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := msg.Decode(pre); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMsgDecode guards the pooled decode side: the full inbound frame
// lifecycle — borrow a pooled frame buffer (as the transports' read paths
// do), copy the wire bytes in, decode, recycle. Steady state must not
// allocate for the frame buffer itself; gob's per-message decoder remains
// the dominant (and irreducible, per message independence) cost.
func BenchmarkMsgDecode(b *testing.B) {
	for _, size := range []int{64, 1024, 16384} {
		pre, err := msg.Encode(sim.NewPayload(1, size))
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("pooledFrame/size=%d", size), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				frame := transport.GetFrame(len(pre))
				copy(frame, pre)
				if _, err := msg.Decode(frame); err != nil {
					b.Fatal(err)
				}
				transport.PutFrame(frame)
			}
		})
	}
}

func BenchmarkCodecRoundTrip(b *testing.B) {
	p := sim.NewPayload(1, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		data, err := msg.Encode(p)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := msg.Decode(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMemnetRoundTrip(b *testing.B) {
	network := transport.NewNetwork(transport.WithSeed(1))
	a := network.Endpoint("a")
	c := network.Endpoint("c")
	b.Cleanup(network.Shutdown)
	payload := make([]byte, 128)
	var wg sync.WaitGroup
	wg.Add(1)
	var received atomic.Uint64
	go func() {
		defer wg.Done()
		for range c.Receive() {
			received.Add(1)
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Send("c", payload)
		for received.Load() < uint64(i+1) {
			time.Sleep(5 * time.Microsecond)
		}
	}
	b.StopTimer()
	network.Shutdown()
	wg.Wait()
}
