package gcs_test

// Public-API crash-recovery test: the follower/join assembly exposed as
// gcs.NewFollowerNode + gcs.ServeReplicaSync — the exact wiring `gcsnode
// -join` runs — over the simulated network. A follower with empty state
// joins a running group, installs the replica snapshot, catches up through
// the command log, and serves reads at backup parity through its own
// gateway.

import (
	"testing"
	"time"

	gcs "repro"
	"repro/internal/kvdemo"
)

func TestFollowerNodePublicAPI(t *testing.T) {
	members := []gcs.ID{"s1", "s2", "s3"}
	network := gcs.NewNetwork(gcs.WithDelay(0, 2*time.Millisecond), gcs.WithSeed(19))
	defer network.Shutdown()

	stores := make([]*kvdemo.Store, len(members))
	reps := make([]*gcs.PassiveReplica, len(members))
	nodes := make([]*gcs.Node, len(members))
	addrs := map[gcs.ID]string{"s1": "s1", "s2": "s2", "s3": "s3", "f1": "f1"}

	for i, id := range members {
		stores[i] = kvdemo.New()
		reps[i] = gcs.NewPassiveReplica(stores[i], members)
		reps[i].SetSnapshotter(gcs.ReplicaSnapshotter{
			Snapshot: stores[i].Snapshot, Restore: stores[i].Restore,
		})
		rep := reps[i]
		node, err := gcs.NewNode(network.Endpoint(id), gcs.Config{
			Self: id, Universe: members, Relation: gcs.PassiveRelation(),
			Snapshot: rep.EncodeSnapshot,
			Restore:  func(b []byte) { _ = rep.InstallSnapshot(b) },
		}, rep.DeliverFunc())
		if err != nil {
			t.Fatal(err)
		}
		gcs.ServeReplicaSync(node, rep)
		rep.Bind(node)
		node.Start()
		nodes[i] = node
	}
	defer func() {
		for _, nd := range nodes {
			nd.Stop()
		}
	}()

	// A gateway at the primary, and some committed state.
	l, err := network.ListenStream("s1")
	if err != nil {
		t.Fatal(err)
	}
	gw := gcs.Serve(gcs.ServiceGatewayConfig{
		Self: "s1", Replica: reps[0], Read: stores[0].Read, Addrs: addrs,
	}, l)
	defer gw.Close()
	client, err := gcs.Dial(gcs.ServiceClientConfig{
		Addrs: []string{"s1"},
		Dial: func(addr string) (gcs.StreamConn, error) {
			return network.DialStream(gcs.ID(addr))
		},
		RetryBackoff: 2 * time.Millisecond,
		OpTimeout:    20 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	for _, op := range []string{"put a 1", "put b 2", "put c 3"} {
		if res, err := client.Call([]byte(op)); err != nil || string(res) != "ok" {
			t.Fatalf("%s: %q %v", op, res, err)
		}
	}

	// The follower joins mid-life from nothing — the gcsnode -join wiring.
	fstore := kvdemo.New()
	follower, err := gcs.NewFollowerNode(network.Endpoint("f1"), fstore, gcs.FollowerConfig{
		Self:         "f1",
		Donors:       members,
		Incarnation:  1,
		Snapshot:     fstore.Snapshot,
		Restore:      fstore.Restore,
		PullInterval: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Stop()
	select {
	case <-follower.Installed():
	case <-time.After(20 * time.Second):
		t.Fatal("follower never installed")
	}

	// Its gateway serves reads at backup parity: monotonic locally and
	// linearizable via the read-index barrier; writes redirect to the
	// primary and stay exactly-once.
	fl, err := network.ListenStream("f1")
	if err != nil {
		t.Fatal(err)
	}
	fgw := gcs.Serve(gcs.ServiceGatewayConfig{
		Self: "f1", Replica: follower.Replica, Read: fstore.Read, Addrs: addrs,
	}, fl)
	defer fgw.Close()
	pinned, err := gcs.Dial(gcs.ServiceClientConfig{
		Addrs: []string{"f1"},
		Dial: func(addr string) (gcs.StreamConn, error) {
			return network.DialStream(gcs.ID(addr))
		},
		RetryBackoff: 2 * time.Millisecond,
		OpTimeout:    20 * time.Second,
		Sticky:       true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pinned.Close()

	if got, err := pinned.ReadAt([]byte("get b"), gcs.ReadLinearizable); err != nil || string(got) != "2" {
		t.Fatalf("linearizable read at follower: %q %v", got, err)
	}
	if got, err := pinned.Read([]byte("get c")); err != nil || string(got) != "3" {
		t.Fatalf("monotonic read at follower: %q %v", got, err)
	}
	if _, err := pinned.Call([]byte("put d 4")); err != nil {
		t.Fatalf("write through follower gateway (redirect): %v", err)
	}
	// The write landed exactly once and reaches the follower's state.
	deadline := time.Now().Add(10 * time.Second)
	for fstore.Get("d") != "4" {
		if time.Now().After(deadline) {
			t.Fatalf("follower never caught up to the redirected write (d=%q)", fstore.Get("d"))
		}
		time.Sleep(2 * time.Millisecond)
	}
	if got, err := pinned.ReadAt([]byte("get d"), gcs.ReadLinearizable); err != nil || string(got) != "4" {
		t.Fatalf("linearizable read of redirected write: %q %v", got, err)
	}
}
