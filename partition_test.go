package gcs_test

// Failure-injection integration tests: partitions, healing, catch-up, and
// the generic broadcast garbage-collection boundary. These exercise the
// primary-partition model of the paper end to end on the public API.

import (
	"fmt"
	"testing"
	"time"

	gcs "repro"
)

// TestPartitionMajoritySideProgresses splits 5 nodes 3/2: the majority side
// keeps delivering (f < n/2), the minority blocks, and after healing the
// minority catches up with the identical total order.
func TestPartitionMajoritySideProgresses(t *testing.T) {
	col := newCollector()
	c, err := gcs.NewCluster(5, gcs.WithDeliver(col.deliver))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	majority := []gcs.ID{"p0", "p1", "p2"}
	minority := []gcs.ID{"p3", "p4"}
	c.Net.Partition(majority, minority)

	for i := 0; i < 10; i++ {
		if err := c.Nodes[0].Abcast(appMsg{S: fmt.Sprintf("maj-%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range majority {
		col.waitCount(t, id, 10, 20*time.Second)
	}
	// Minority must not have delivered anything (no quorum).
	time.Sleep(100 * time.Millisecond)
	for _, id := range minority {
		if got := len(col.get(id)); got != 0 {
			t.Fatalf("minority member %s delivered %d messages inside the partition", id, got)
		}
	}

	// Heal: the minority catches up and agrees on the exact order.
	c.Net.Heal()
	for _, id := range minority {
		col.waitCount(t, id, 10, 20*time.Second)
	}
	ref := payloads(col.get("p0"))
	for _, id := range c.IDs()[1:] {
		got := payloads(col.get(id))
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("order at %s differs at %d: %q vs %q", id, i, got[i], ref[i])
			}
		}
	}
}

// TestMinoritySenderDeliveredAfterHeal: a message broadcast from inside the
// minority partition must not be lost — it gets ordered and delivered
// everywhere after the partition heals (reliable broadcast keeps relaying).
func TestMinoritySenderDeliveredAfterHeal(t *testing.T) {
	col := newCollector()
	c, err := gcs.NewCluster(3, gcs.WithDeliver(col.deliver))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	c.Net.Partition([]gcs.ID{"p0", "p1"}, []gcs.ID{"p2"})
	if err := c.Nodes[2].Abcast(appMsg{S: "from-minority"}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(80 * time.Millisecond)
	c.Net.Heal()
	for _, id := range c.IDs() {
		col.waitCount(t, id, 1, 20*time.Second)
	}
	for _, id := range c.IDs() {
		if got := payloads(col.get(id)); got[0] != "from-minority" {
			t.Fatalf("%s delivered %v", id, got)
		}
	}
}

// TestFlushLimitBoundsMemory forces the generic broadcast auto-flush: with
// a tiny flush limit, a long run of fast messages must trigger internal
// garbage-collection boundaries without disturbing the application
// (deliveries still arrive, no flush message ever surfaces).
func TestFlushLimitBoundsMemory(t *testing.T) {
	col := newCollector()
	c, err := gcs.NewCluster(3,
		gcs.WithDeliver(col.deliver),
		gcs.WithConfig(func(cfg *gcs.Config) { cfg.FlushLimit = 16 }),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	const total = 80
	for i := 0; i < total; i++ {
		if err := c.Nodes[i%3].Rbcast(appMsg{S: fmt.Sprintf("r%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range c.IDs() {
		col.waitCount(t, id, total, 20*time.Second)
	}
	// The GC boundary ran at least once (its consensus round may lag the
	// last fast delivery slightly).
	deadline := time.Now().Add(10 * time.Second)
	for c.Nodes[0].BroadcastStats().Boundaries == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("flush limit 16 with %d messages ran no GC boundary", total)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// ...and was invisible to the application.
	for _, id := range c.IDs() {
		for _, d := range col.get(id) {
			if _, ok := d.Body.(appMsg); !ok {
				t.Fatalf("non-application delivery leaked: %+v", d)
			}
		}
	}
}

// TestLossyAndSlowCluster is a soak: 15% loss, jittery latency, mixed
// classes from all nodes; everything must still deliver with conflicting
// pairs identically ordered.
func TestLossyAndSlowCluster(t *testing.T) {
	col := newCollector()
	c, err := gcs.NewCluster(3,
		gcs.WithDeliver(col.deliver),
		gcs.WithNetOptions(gcs.WithDelay(0, 4*time.Millisecond), gcs.WithLoss(0.15), gcs.WithSeed(77)),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	const perNode = 10
	for i := 0; i < perNode; i++ {
		for n, nd := range c.Nodes {
			var err error
			if i%3 == 2 {
				err = nd.Abcast(appMsg{S: fmt.Sprintf("a-%d-%d", n, i)})
			} else {
				err = nd.Rbcast(appMsg{S: fmt.Sprintf("r-%d-%d", n, i)})
			}
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	total := perNode * 3
	for _, id := range c.IDs() {
		col.waitCount(t, id, total, 60*time.Second)
	}
	// Ordered (abcast-class) messages must appear in the same relative
	// order everywhere.
	ordered := func(id gcs.ID) []string {
		var out []string
		for _, d := range col.get(id) {
			if d.Class == gcs.ClassAbcast {
				out = append(out, d.Body.(appMsg).S)
			}
		}
		return out
	}
	ref := ordered("p0")
	for _, id := range c.IDs()[1:] {
		got := ordered(id)
		if len(got) != len(ref) {
			t.Fatalf("%s ordered count %d vs %d", id, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("%s ordered stream differs at %d: %q vs %q", id, i, got[i], ref[i])
			}
		}
	}
}
